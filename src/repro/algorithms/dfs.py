"""Depth-first search (DFS) — Section 5.2 of the paper.

Batch algorithm (DFS_fp)
------------------------
Every node ``v`` carries a status variable ``x_v = [v.first, v.last]``,
the discovery/finish interval of the DFS traversal, initialized to
``[∞, ∞]``.  A virtual root ``r`` is connected to every node, and the
traversal is made *canonical* (deterministic): the root considers nodes
in ascending id order, and every node scans its (out-)neighbors in
ascending id order.  Each node's interval is a strict subinterval of its
parent's, so DFS_fp is contracting and monotonic under the interval
order ``x_v ⪯ x_u ⟺ v.last ≤ u.first`` (Section 5.2).  The invariant is
the classic "no forward-cross edge": no edge ``(v', v)`` with
``v'.last < v.first``.

Incremental algorithm (IncDFS, Example 7)
------------------------------------------
*Deducible*: the anchor set of ``x_v`` is its parent interval, and the
order ``<_C`` is the order of the ``first`` values — both read directly
off the fixpoint, no timestamps.  The scope function computes, for every
update, the earliest traversal moment it can influence:

* deleting a non-tree edge never changes the traversal (``∞``);
* deleting the tree edge to ``v`` takes effect at ``v.first``;
* inserting ``(u, v)`` takes effect at the *consideration slot* of ``v``
  in ``u``'s canonical neighbor scan — and not at all if ``v`` was
  already discovered by then;
* vertex insertions/deletions take effect at their root-scan slot /
  ``first`` time.

Everything strictly before ``f* = min`` of these moments is provably
identical in the old and new canonical traversals, so IncDFS keeps that
prefix — all completed subtrees and the active path at ``f*`` — and
resumes the traversal from ``f*`` on the updated graph.  The variables it
recomputes are exactly those whose intervals or parents may change,
matching the paper's observation that small updates to early traversal
regions still affect a large suffix (Exp-2(1e): IncDFS loses to the
batch run beyond ``|ΔG| ≈ 4%``).

Node ids must be mutually orderable (the canonical traversal sorts them).

>>> from repro.graph import from_edges
>>> g = from_edges([(0, 1), (1, 2)], directed=True)
>>> result = dfs(g)
>>> result.first[0], result.last[2]
(0, 3)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..errors import IncrementalizationError
from ..graph.graph import Graph, Node
from ..graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    VertexDeletion,
    VertexInsertion,
    apply_updates,
)
from ..core.incremental import IncrementalResult
from ..core.state import FixpointState
from ..metrics.counters import AccessCounter, NullCounter

INF = math.inf

PARENT = "p"  # state key prefix for the parent component of S_A


@dataclass
class DFSResult:
    """The DFS tree: discovery/finish numbers and parents.

    ``parent[v] is None`` means ``v`` hangs off the virtual root.
    """

    first: Dict[Node, int] = field(default_factory=dict)
    last: Dict[Node, int] = field(default_factory=dict)
    parent: Dict[Node, Optional[Node]] = field(default_factory=dict)

    def preorder(self) -> List[Node]:
        """Nodes in discovery order."""
        return sorted(self.first, key=self.first.get)

    def tree_edges(self) -> Iterator[Tuple[Node, Node]]:
        for v, p in self.parent.items():
            if p is not None:
                yield (p, v)

    def is_ancestor(self, a: Node, b: Node) -> bool:
        """Whether ``a`` is an ancestor of ``b`` in the DFS tree."""
        return self.first[a] <= self.first[b] and self.last[b] <= self.last[a]

    def classify_edge(self, u: Node, v: Node) -> str:
        """The DFS type of directed edge ``(u, v)``.

        ``'tree/forward'`` (v inside u's interval), ``'back'`` (v an
        ancestor of u — witnesses a cycle), or ``'cross'`` (v finished
        before u started).
        """
        if self.is_ancestor(u, v):
            return "tree/forward"
        if self.is_ancestor(v, u):
            return "back"
        return "cross"


def has_cycle(graph: Graph, result: Optional[DFSResult] = None) -> bool:
    """Whether a directed graph contains a cycle (a DFS back edge).

    >>> from repro.graph import from_edges
    >>> has_cycle(from_edges([(0, 1), (1, 2)], directed=True))
    False
    >>> has_cycle(from_edges([(0, 1), (1, 0)], directed=True))
    True
    """
    if not graph.directed:
        raise IncrementalizationError("cycle classification requires a directed graph")
    if result is None:
        result = dfs(graph)
    return any(
        u != v and result.classify_edge(u, v) == "back" for u, v in graph.edges()
    ) or any(u == v for u, v in graph.edges())


def topological_order(graph: Graph, result: Optional[DFSResult] = None):
    """Nodes in topological order (reverse DFS finish order).

    Raises :class:`~repro.errors.IncrementalizationError` if the graph is
    cyclic.  Combined with :class:`IncDFS`, this keeps a topological
    order of a DAG maintained incrementally.

    >>> from repro.graph import from_edges
    >>> topological_order(from_edges([(0, 2), (2, 1)], directed=True))
    [0, 2, 1]
    """
    if result is None:
        result = dfs(graph)
    if has_cycle(graph, result):
        raise IncrementalizationError("graph is cyclic: no topological order exists")
    return sorted(result.last, key=result.last.get, reverse=True)


def _scan_neighbors(graph: Graph, v: Node) -> List[Node]:
    """The canonical neighbor scan order of ``v``."""
    if graph.directed:
        return sorted(graph.out_neighbors(v))
    return sorted(graph.neighbors(v))


def _continue_traversal(
    graph: Graph,
    first: Dict[Node, int],
    last: Dict[Node, int],
    parent: Dict[Node, Optional[Node]],
    discovered: Set[Node],
    clock: int,
    stack: List[Tuple[Node, Iterator[Node]]],
    counter: AccessCounter,
) -> int:
    """Run the canonical DFS to completion from a primed traversal state.

    ``stack`` holds the active path (deepest node last), each with a fresh
    neighbor iterator — already-considered neighbors are in ``discovered``
    and are skipped, which reproduces the canonical run exactly.  Returns
    the final clock.
    """
    roots = iter(sorted(graph.nodes()))
    while True:
        while stack:
            v, neighbors = stack[-1]
            advanced = False
            for w in neighbors:
                counter.on_read(w)
                if w not in discovered:
                    counter.on_eval(w)
                    first[w] = clock
                    clock += 1
                    parent[w] = v
                    discovered.add(w)
                    stack.append((w, iter(_scan_neighbors(graph, w))))
                    advanced = True
                    break
            if not advanced:
                last[v] = clock
                clock += 1
                counter.on_write(v)
                stack.pop()
        started = False
        for r in roots:
            counter.on_read(r)
            if r not in discovered:
                counter.on_eval(r)
                first[r] = clock
                clock += 1
                parent[r] = None
                discovered.add(r)
                stack.append((r, iter(_scan_neighbors(graph, r))))
                started = True
                break
        if not started:
            return clock


class DFSfp:
    """The batch DFS algorithm ``DFS_fp`` (Section 5.2).

    API-compatible with :class:`~repro.core.incremental.BatchAlgorithm`:
    :meth:`run` returns a :class:`FixpointState` whose values are the
    interval variables ``v → (first, last)`` plus parent entries
    ``('p', v) → parent``.
    """

    name = "DFS"

    def run(self, graph: Graph, query: Any = None, counter: AccessCounter = None) -> FixpointState:
        state = FixpointState(counter=counter)
        first: Dict[Node, int] = {}
        last: Dict[Node, int] = {}
        parent: Dict[Node, Optional[Node]] = {}
        _continue_traversal(
            graph, first, last, parent, set(), 0, [], state.counter
        )
        for v in first:
            state.seed(v, (first[v], last[v]))
            state.seed((PARENT, v), parent[v])
        return state

    def answer(self, state: FixpointState, graph: Graph = None, query: Any = None) -> DFSResult:
        result = DFSResult()
        for key, value in state.values.items():
            if isinstance(key, tuple) and len(key) == 2 and key[0] == PARENT:
                result.parent[key[1]] = value
            else:
                result.first[key] = value[0]
                result.last[key] = value[1]
        return result

    def __call__(self, graph: Graph, query: Any = None) -> DFSResult:
        return self.answer(self.run(graph, query))


def dfs(graph: Graph) -> DFSResult:
    """One-shot canonical batch DFS."""
    return DFSfp()(graph)


class IncDFS:
    """The deducible incremental DFS algorithm (Example 7).

    API-compatible with :class:`~repro.core.incremental.IncrementalAlgorithm`:
    :meth:`apply` mutates ``graph`` to ``G ⊕ ΔG`` and ``state`` to the new
    fixpoint, returning the output changes ``ΔO``.
    """

    name = "IncDFS"
    deducible = True

    # ------------------------------------------------------------------
    # Effect-time analysis (the scope function h)
    # ------------------------------------------------------------------
    def _consideration_slot(
        self,
        graph: Graph,
        state: FixpointState,
        u: Node,
        v: Node,
        counter: AccessCounter,
    ) -> float:
        """When ``u``'s canonical scan reaches the slot of neighbor ``v``.

        Walks ``u``'s *old* neighbor list: skipped neighbors consume no
        time, tree children advance the clock past their subtree.
        """
        if u not in state.values:
            return INF  # u itself is new; its scan lies in the recomputed suffix
        counter.on_read(u)
        slot = state.values[u][0] + 1  # first consideration right after discovery
        for w in _scan_neighbors(graph, u):
            if not (w < v):
                break
            counter.on_read(w)
            if state.values.get((PARENT, w)) == u:
                slot = state.values[w][1] + 1
        return slot

    def _root_slot(self, graph: Graph, state: FixpointState, v: Node, counter: AccessCounter) -> float:
        """When the virtual root's scan reaches the slot of new node ``v``."""
        slot = 0
        for c in sorted(graph.nodes()):
            if not (c < v):
                break
            counter.on_read(c)
            if state.values.get((PARENT, c), "missing") is None:
                slot = state.values[c][1] + 1
        return slot

    def _insertion_effect(
        self, graph: Graph, state: FixpointState, u: Node, v: Node, counter: AccessCounter
    ) -> float:
        """Earliest effect of inserting edge ``(u, v)`` (directed sense)."""
        slot = self._consideration_slot(graph, state, u, v, counter)
        if slot == INF:
            return INF
        v_first = state.values[v][0] if v in state.values else INF
        if v_first < slot:
            return INF  # v already discovered when considered: edge is skipped
        return slot

    def _effect_time(
        self, graph: Graph, state: FixpointState, update, counter: AccessCounter
    ) -> float:
        if isinstance(update, EdgeDeletion):
            u, v = update.u, update.v
            counter.on_eval((u, v))
            best = INF
            if state.values.get((PARENT, v), "missing") == u and v in state.values:
                best = state.values[v][0]
            if not graph.directed and state.values.get((PARENT, u), "missing") == v and u in state.values:
                best = min(best, state.values[u][0])
            return best
        if isinstance(update, EdgeInsertion):
            u, v = update.u, update.v
            counter.on_eval((u, v))
            best = self._insertion_effect(graph, state, u, v, counter)
            if not graph.directed:
                best = min(best, self._insertion_effect(graph, state, v, u, counter))
            return best
        if isinstance(update, VertexDeletion):
            counter.on_eval(update.v)
            if update.v in state.values:
                return state.values[update.v][0]
            return INF
        if isinstance(update, VertexInsertion):
            counter.on_eval(update.v)
            return self._root_slot(graph, state, update.v, counter)
        return INF

    # ------------------------------------------------------------------
    def apply(
        self,
        graph: Graph,
        state: FixpointState,
        delta: Batch,
        query: Any = None,
        trace: bool = False,
        measure: bool = False,
    ) -> IncrementalResult:
        """Apply ``ΔG``; mutate ``graph`` and ``state``; return ``ΔO``."""
        if not isinstance(delta, Batch):
            delta = Batch(list(delta))
        if not state.values:
            raise IncrementalizationError(
                "incremental run started from an empty state; run DFS_fp first"
            )
        counting = measure or trace
        result = IncrementalResult(
            h_counter=AccessCounter(trace=trace) if counting else NullCounter(),
            engine_counter=AccessCounter(trace=trace) if counting else NullCounter(),
        )
        delta = delta.expanded(graph)

        # Scope function: earliest effect time f* over all unit updates,
        # computed against the old graph and old fixpoint.
        f_star = INF
        for update in delta:
            f_star = min(f_star, self._effect_time(graph, state, update, result.h_counter))

        apply_updates(graph, delta)

        removed = {u.v for u in delta if isinstance(u, VertexDeletion)}
        if f_star == INF:
            # No unit update can alter the canonical traversal.
            for v in removed:  # pragma: no cover - removal implies finite f*
                state.drop(v)
                state.drop((PARENT, v))
            return result

        # Reconstruct the traversal state at time f*.
        first: Dict[Node, int] = {}
        last: Dict[Node, int] = {}
        parent: Dict[Node, Optional[Node]] = {}
        discovered: Set[Node] = set()
        active: List[Node] = []
        for key, value in state.values.items():
            if isinstance(key, tuple) and len(key) == 2 and key[0] == PARENT:
                continue
            v = key
            if v in removed or not graph.has_node(v):
                continue
            v_first, v_last = value
            if v_first < f_star:
                discovered.add(v)
                first[v] = v_first
                parent[v] = state.values.get((PARENT, v))
                if v_last < f_star:
                    last[v] = v_last
                else:
                    active.append(v)

        active.sort(key=first.get)
        stack = [(v, iter(_scan_neighbors(graph, v))) for v in active]

        _continue_traversal(
            graph, first, last, parent, discovered, f_star, stack, result.engine_counter
        )

        # Write back, recording ΔO.
        for v in removed:
            old_interval = state.values.pop(v, None)
            old_parent = state.values.pop((PARENT, v), None)
            state.timestamps.pop(v, None)
            state.timestamps.pop((PARENT, v), None)
            if old_interval is not None:
                result.changes[v] = (old_interval, None)
                result.changes[(PARENT, v)] = (old_parent, None)
        for v in first:
            new_interval = (first[v], last[v])
            new_parent = parent[v]
            old_interval = state.values.get(v)
            old_parent = state.values.get((PARENT, v))
            if old_interval != new_interval:
                result.changes[v] = (old_interval, new_interval)
                result.scope.add(v)
            if old_parent != new_parent:
                result.changes[(PARENT, v)] = (old_parent, new_parent)
                result.scope.add(v)
            state.values[v] = new_interval
            state.values[(PARENT, v)] = new_parent
        return result
