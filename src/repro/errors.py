"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  The subclasses separate failures of the
*substrate* (graph manipulation, I/O) from failures of the *framework*
(fixpoint specification, incrementalization).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Structural graph errors (unknown nodes, duplicate edges, ...)."""


class NodeNotFoundError(GraphError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class DuplicateEdgeError(GraphError):
    """Inserting an edge that already exists."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) already exists")
        self.edge = (u, v)


class DuplicateNodeError(GraphError):
    """Inserting a node that already exists."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists")
        self.node = node


class UpdateError(ReproError):
    """An update batch cannot be applied to the target graph."""


class BatchValidationError(UpdateError):
    """``ΔG`` failed up-front validation; nothing was mutated.

    Raised by :func:`repro.resilience.validate.validate_batch` (and hence
    by :meth:`repro.session.DynamicGraphSession.update`) *before* any
    graph replica or fixpoint state is touched, so catching it never
    requires a rollback.
    """

    def __init__(self, message: str, index: int = -1) -> None:
        super().__init__(message)
        #: Position of the offending unit update within the batch.
        self.index = index


class UnknownNodeError(BatchValidationError):
    """An update references a node the batch-so-far never materializes."""


class ContradictoryUpdateError(BatchValidationError):
    """Duplicate or conflicting ops: re-inserting a present edge/node,
    deleting an absent one, or an op invalidated earlier in the batch."""


class InvalidWeightError(BatchValidationError):
    """An edge weight is non-finite, or violates a registered
    algorithm's weight requirements (e.g. negative weights under SSSP)."""


class SessionError(ReproError):
    """A continuous-query session failure (transactions, WAL, recovery)."""


class TransactionError(SessionError):
    """An update batch failed mid-apply; the session was rolled back to
    its pre-batch snapshot.  ``__cause__`` carries the original error."""


class RecoveryError(SessionError):
    """A session checkpoint or WAL cannot be loaded or replayed."""


class ShardingError(SessionError):
    """A sharded-session failure (:mod:`repro.parallel`): a worker died,
    a command failed on a shard, or an unsupported configuration."""

    def __init__(self, message: str, shard: int = -1) -> None:
        super().__init__(message)
        #: Index of the shard involved (-1 = the router itself).
        self.shard = shard


class ShardedDirectoryError(RecoveryError):
    """A plain-session operation was pointed at a *sharded* session
    directory (one holding a ``sharding.json`` manifest and per-shard
    subdirectories).  Recover it with
    :meth:`repro.parallel.ShardedSession.recover` (the ``repro recover``
    command auto-detects the manifest)."""


class ShardRecoveryError(RecoveryError):
    """A sharded session directory cannot be reassembled: a shard is
    missing, a shard failed to recover, or the shards' WAL sequence
    numbers diverge (a crash mid-scatter lost part of a window on some
    shards — see docs/serving.md, "Failure semantics per shard")."""


class ShardExchangeError(ShardingError):
    """A cross-shard boundary exchange failed to reach quiescence within
    its superstep cap.  The router falls back to a full resync (fragment
    re-evaluation + monotone exchange), which always converges; seeing
    this error means even the fallback failed."""


class ServeError(SessionError):
    """A concurrent query-service failure (:mod:`repro.serve`)."""


class Overloaded(ServeError):
    """The service shed the request: its bounded write queue is full.

    Back off and retry; the request was **not** enqueued and will never
    be applied.  :attr:`depth` carries the queue depth at rejection.
    """

    def __init__(self, message: str = "write queue is full", depth: int = -1) -> None:
        super().__init__(message)
        self.depth = depth


class Deadline(ServeError):
    """The request's deadline expired before it completed.

    For writes this is *ambiguous on the commit side*: an op whose
    deadline expires while queued is shed un-applied, but an op whose
    deadline expires during the apply itself may still commit — observe
    the outcome through a subsequent read's sequence number.  For
    ``watch`` long-polls it simply means no newer version arrived in
    time.
    """


class ServiceClosed(ServeError):
    """The service is shutting down (or closed) and admits no new work."""


class FixpointError(ReproError):
    """A fixpoint specification is inconsistent or its run diverged."""


class IncrementalizationError(ReproError):
    """The incrementalization machinery was misused.

    Raised, for example, when an incremental run is started from a state
    that was not produced by the matching batch algorithm, or when a spec
    that requires timestamps is incrementalized without them.
    """


class DatasetError(ReproError):
    """A named dataset cannot be materialized."""
