"""Continuous-query sessions over one dynamic graph.

The paper's motivating deployments ("we often need to repeatedly run
queries of e.g. SSSP, graph simulation, ... when graphs are updated")
keep *many* standing queries in sync with one evolving graph.
:class:`DynamicGraphSession` packages that workflow:

* register any number of queries (each = an algorithm pair + a query
  object) against a shared graph;
* push update batches once — every registered query is maintained
  incrementally and its ``ΔO`` is delivered to subscribed listeners;
* read any query's current answer at any time.

Example
-------
>>> from repro import Graph
>>> from repro.session import DynamicGraphSession
>>> g = Graph(directed=True)
>>> g.add_edge(0, 1, weight=2.0)
>>> session = DynamicGraphSession(g)
>>> _ = session.register("routes", "SSSP", query=0)
>>> session.answer("routes")[1]
2.0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from .algorithms import (
    CCfp,
    CorenessFp,
    DFSfp,
    Dijkstra,
    IncCC,
    IncCoreness,
    IncDFS,
    IncLCC,
    IncReach,
    IncSSSP,
    IncSSWP,
    IncSim,
    LCCfp,
    Reachability,
    Simfp,
    WidestPath,
)
from .core.incremental import IncrementalResult
from .core.state import FixpointState
from .errors import ReproError
from .graph.graph import Graph
from .graph.updates import Batch, Update

# Built-in algorithm pairs, addressable by name.
ALGORITHM_PAIRS: Dict[str, Tuple[Callable[[], Any], Callable[[], Any]]] = {
    "SSSP": (Dijkstra, IncSSSP),
    "CC": (CCfp, IncCC),
    "Sim": (Simfp, IncSim),
    "DFS": (DFSfp, IncDFS),
    "LCC": (LCCfp, IncLCC),
    "SSWP": (WidestPath, IncSSWP),
    "Reach": (Reachability, IncReach),
    "Coreness": (CorenessFp, IncCoreness),
}

Listener = Callable[[str, IncrementalResult], None]


@dataclass
class RegisteredQuery:
    """One standing query: its algorithms, query object, state, and the
    graph replica the state is maintained against.

    Incremental algorithms mutate their graph while applying ΔG (some —
    IncDFS, IncCoreness — must see the pre-update graph), so each query
    keeps its own replica; the session applies every batch to each
    replica and to its reference graph, keeping them all identical.
    """

    name: str
    batch: Any
    incremental: Any
    query: Any
    state: FixpointState
    graph: Graph = None
    listeners: List[Listener] = field(default_factory=list)


class DynamicGraphSession:
    """Keep many registered queries in sync with one evolving graph.

    The session owns the graph: apply updates through :meth:`update`
    only, so every registered state stays consistent with it.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._queries: Dict[str, RegisteredQuery] = {}
        self._batches_applied = 0

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        algorithm: str,
        query: Any = None,
        listener: Optional[Listener] = None,
    ) -> RegisteredQuery:
        """Register a standing query and run its batch algorithm once.

        ``algorithm`` names a built-in pair (see :data:`ALGORITHM_PAIRS`).
        """
        if name in self._queries:
            raise ReproError(f"query {name!r} is already registered")
        try:
            batch_factory, inc_factory = ALGORITHM_PAIRS[algorithm]
        except KeyError:
            raise ReproError(
                f"unknown algorithm {algorithm!r}; available: {', '.join(ALGORITHM_PAIRS)}"
            ) from None
        batch = batch_factory()
        replica = self.graph.copy()
        state = batch.run(replica, query)
        registered = RegisteredQuery(
            name=name,
            batch=batch,
            incremental=inc_factory(),
            query=query,
            state=state,
            graph=replica,
        )
        if listener is not None:
            registered.listeners.append(listener)
        self._queries[name] = registered
        return registered

    def unregister(self, name: str) -> None:
        if name not in self._queries:
            raise ReproError(f"query {name!r} is not registered")
        del self._queries[name]

    def subscribe(self, name: str, listener: Listener) -> None:
        """Call ``listener(name, result)`` after every update batch."""
        self._query(name).listeners.append(listener)

    def queries(self) -> List[str]:
        return list(self._queries)

    def _query(self, name: str) -> RegisteredQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise ReproError(f"query {name!r} is not registered") from None

    # ------------------------------------------------------------------
    def update(self, delta) -> Dict[str, IncrementalResult]:
        """Apply ``ΔG`` to the graph and maintain every registered query.

        Returns ``{query name: ΔO result}`` and notifies listeners.
        Each query maintains its own graph replica, so per-query
        incremental applications never interfere.
        """
        if not isinstance(delta, Batch):
            delta = Batch(list(delta))
        results: Dict[str, IncrementalResult] = {}
        from .graph.updates import apply_updates

        for registered in self._queries.values():
            results[registered.name] = registered.incremental.apply(
                registered.graph, registered.state, delta, registered.query
            )
        apply_updates(self.graph, delta)
        self._batches_applied += 1
        for registered in self._queries.values():
            for listener in registered.listeners:
                listener(registered.name, results[registered.name])
        return results

    def update_stream(self, stream) -> Dict[str, Any]:
        """Apply a whole update stream with per-query coalescing.

        ``stream`` is an iterable of :class:`Batch` or unit updates.
        Each registered query drives the stream through its incremental
        algorithm's :meth:`apply_stream` scheduler (coalesced windows,
        per-op kernel-vs-generic routing); the session's reference graph
        receives the raw stream, so all replicas stay identical.
        Returns ``{query name: StreamResult}`` with each query's composed
        ``ΔO``; listeners are *not* called per op — read the composed
        result instead.
        """
        stream = [
            item if isinstance(item, Batch) else Batch([item]) for item in stream
        ]
        results: Dict[str, Any] = {}
        from .graph.updates import apply_updates

        for registered in self._queries.values():
            if hasattr(registered.incremental, "apply_stream"):
                results[registered.name] = registered.incremental.apply_stream(
                    registered.graph, registered.state, stream, registered.query
                )
            else:  # non-spec incrementals (IncDFS, ...) apply op by op
                for batch in stream:
                    results[registered.name] = registered.incremental.apply(
                        registered.graph, registered.state, batch, registered.query
                    )
        for batch in stream:
            apply_updates(self.graph, batch)
            self._batches_applied += 1
        return results

    def answer(self, name: str) -> Any:
        """The current ``Q(G)`` of a registered query."""
        registered = self._query(name)
        return registered.batch.answer(registered.state, registered.graph, registered.query)

    @property
    def batches_applied(self) -> int:
        return self._batches_applied

    def __repr__(self) -> str:
        return (
            f"DynamicGraphSession(|V|={self.graph.num_nodes}, "
            f"queries={list(self._queries)}, batches={self._batches_applied})"
        )
