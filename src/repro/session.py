"""Continuous-query sessions over one dynamic graph.

The paper's motivating deployments ("we often need to repeatedly run
queries of e.g. SSSP, graph simulation, ... when graphs are updated")
keep *many* standing queries in sync with one evolving graph.
:class:`DynamicGraphSession` packages that workflow:

* register any number of queries (each = an algorithm pair + a query
  object) against a shared graph;
* push update batches once — every registered query is maintained
  incrementally and its ``ΔO`` is delivered to subscribed listeners;
* read any query's current answer at any time.

A session that runs for days must also survive what long-running
services actually hit, so updates are *fault tolerant* (see
``docs/robustness.md`` and :mod:`repro.resilience`):

* batches are validated up front — malformed ``ΔG`` raises a typed
  :class:`~repro.errors.BatchValidationError` before anything mutates;
* applies are transactional — a mid-batch failure rolls every replica
  back to its pre-batch snapshot and raises
  :class:`~repro.errors.TransactionError`;
* sessions given a durable ``SessionConfig.directory`` write-ahead-log
  every batch and checkpoint on a cadence, so :meth:`recover` rebuilds
  a crashed session without re-running any batch algorithm;
* σ_A invariant audits (:meth:`audit`) detect silent state corruption,
  and misbehaving queries are quarantined and self-healed by batch
  recomputation instead of poisoning the whole session.

Example
-------
>>> from repro import Graph
>>> from repro.session import DynamicGraphSession
>>> g = Graph(directed=True)
>>> g.add_edge(0, 1, weight=2.0)
>>> session = DynamicGraphSession(g)
>>> _ = session.register("routes", "SSSP", query=0)
>>> session.answer("routes")[1]
2.0
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple, Union

from .algorithms import (
    CCfp,
    CorenessFp,
    DFSfp,
    Dijkstra,
    IncCC,
    IncCoreness,
    IncDFS,
    IncLCC,
    IncReach,
    IncSSSP,
    IncSSWP,
    IncSim,
    LCCfp,
    Reachability,
    Simfp,
    WidestPath,
)
from .core.incremental import IncrementalAlgorithm, IncrementalResult
from .core.state import FixpointState
from .errors import (
    FixpointError,
    RecoveryError,
    ReproError,
    SessionError,
    ShardedDirectoryError,
    ShardingError,
    TransactionError,
)
from .graph.graph import Graph
from .graph.updates import Batch, Update, apply_updates
from .resilience import SessionConfig
from .resilience.audit import AuditReport, QueryAudit, full_audit, sigma_audit
from .resilience.checkpoint import (
    SHARDING_FILE,
    WAL_FILE,
    load_checkpoint,
    write_checkpoint,
)
from .resilience.faults import InjectedFault, inject
from .resilience.incidents import IncidentLog
from .resilience.sanitizer import apply_starting, guarded_mutation, wal_logged
from .resilience.transactions import SessionTransaction
from .resilience.validate import session_weight_requirements, validate_batch
from .resilience.wal import WriteAheadLog

# Built-in algorithm pairs, addressable by name.
ALGORITHM_PAIRS: Dict[str, Tuple[Callable[[], Any], Callable[[], Any]]] = {
    "SSSP": (Dijkstra, IncSSSP),
    "CC": (CCfp, IncCC),
    "Sim": (Simfp, IncSim),
    "DFS": (DFSfp, IncDFS),
    "LCC": (LCCfp, IncLCC),
    "SSWP": (WidestPath, IncSSWP),
    "Reach": (Reachability, IncReach),
    "Coreness": (CorenessFp, IncCoreness),
}

Listener = Callable[[str, IncrementalResult], None]


@dataclass
class RegisteredQuery:
    """One standing query: its algorithms, query object, state, and the
    graph replica the state is maintained against.

    Incremental algorithms mutate their graph while applying ΔG (some —
    IncDFS, IncCoreness — must see the pre-update graph), so each query
    keeps its own replica; the session applies every batch to each
    replica and to its reference graph, keeping them all identical.
    """

    name: str
    batch: Any
    incremental: Any
    query: Any
    state: FixpointState
    graph: Graph = None
    listeners: List[Listener] = field(default_factory=list)
    #: Name of the algorithm pair in :data:`ALGORITHM_PAIRS` — recorded
    #: so checkpoints can rebuild the pair on :meth:`recover`.
    algorithm: str = ""
    #: Consecutive failed incremental applies (reset on clean success).
    faults: int = 0
    #: Quarantined queries skip the incremental path and are maintained
    #: by batch recomputation until :meth:`DynamicGraphSession.heal`.
    quarantined: bool = False


def _diff_values(old: Dict, new: Dict) -> Dict[Hashable, Tuple[Any, Any]]:
    """ΔO between two value assignments (``None`` on the missing side)."""
    changes: Dict[Hashable, Tuple[Any, Any]] = {}
    for key, value in new.items():
        before = old.get(key)
        if key not in old or before != value:
            changes[key] = (before if key in old else None, value)
    for key, before in old.items():
        if key not in new:
            changes[key] = (before, None)
    return changes


class DynamicGraphSession:
    """Keep many registered queries in sync with one evolving graph.

    The session owns the graph: apply updates through :meth:`update`
    only, so every registered state stays consistent with it.  Pass a
    :class:`~repro.resilience.SessionConfig` to tune validation,
    transactionality, durability, and audits; the default is
    validated + transactional, in memory.
    """

    def __init__(self, graph: Graph, config: Optional[SessionConfig] = None) -> None:
        self.graph = graph
        self.config = config or SessionConfig()
        self._queries: Dict[str, RegisteredQuery] = {}
        self._batches_applied = 0
        self.incidents = IncidentLog(self.config.max_incidents)
        self._wal: Optional[WriteAheadLog] = None
        self._seq = -1  # last WAL sequence number issued
        if self.config.directory is not None:
            directory = Path(self.config.directory)
            directory.mkdir(parents=True, exist_ok=True)
            wal_path = directory / WAL_FILE
            self._seq = WriteAheadLog.last_seq(wal_path)
            self._wal = WriteAheadLog(wal_path, fsync=self.config.fsync)

    # ------------------------------------------------------------------
    @guarded_mutation("session.register")
    def register(
        self,
        name: str,
        algorithm: str,
        query: Any = None,
        listener: Optional[Listener] = None,
    ) -> RegisteredQuery:
        """Register a standing query and run its batch algorithm once.

        ``algorithm`` names a built-in pair (see :data:`ALGORITHM_PAIRS`).
        """
        if name in self._queries:
            raise ReproError(f"query {name!r} is already registered")
        try:
            batch_factory, inc_factory = ALGORITHM_PAIRS[algorithm]
        except KeyError:
            raise ReproError(
                f"unknown algorithm {algorithm!r}; available: {', '.join(ALGORITHM_PAIRS)}"
            ) from None
        batch = batch_factory()
        replica = self.graph.copy()
        state = batch.run(replica, query)
        registered = RegisteredQuery(
            name=name,
            batch=batch,
            incremental=inc_factory(),
            query=query,
            state=state,
            graph=replica,
            algorithm=algorithm,
        )
        if listener is not None:
            registered.listeners.append(listener)
        self._queries[name] = registered
        # Checkpoint eagerly so recovery never has to re-run A from Δ⊥.
        self._checkpoint_if_durable()
        return registered

    @guarded_mutation("session.unregister")
    def unregister(self, name: str) -> None:
        if name not in self._queries:
            raise ReproError(f"query {name!r} is not registered")
        del self._queries[name]
        self._checkpoint_if_durable()

    def subscribe(self, name: str, listener: Listener) -> None:
        """Call ``listener(name, result)`` after every update batch."""
        self._query(name).listeners.append(listener)

    def queries(self) -> List[str]:
        """Names of all registered queries, as a fresh list.

        The returned list is a defensive copy: mutating it never touches
        the session, and a registration from another thread never mutates
        a list a reader already holds.
        """
        return list(self._queries)

    def _query(self, name: str) -> RegisteredQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise ReproError(f"query {name!r} is not registered") from None

    # ------------------------------------------------------------------
    # Applying updates
    # ------------------------------------------------------------------
    @guarded_mutation("session.update")
    def update(self, delta) -> Dict[str, IncrementalResult]:
        """Apply ``ΔG`` to the graph and maintain every registered query.

        Returns ``{query name: ΔO result}`` and notifies listeners.
        Each query maintains its own graph replica, so per-query
        incremental applications never interfere.

        The batch is validated first (typed
        :class:`~repro.errors.BatchValidationError` subclasses, nothing
        mutated), then WAL-logged when the session is durable, then
        applied under a snapshot transaction: any mid-batch failure
        rolls every replica back and raises
        :class:`~repro.errors.TransactionError` with the original error
        as its cause.  :class:`~repro.resilience.InjectedFault` models a
        hard crash and propagates as-is — no rollback, no abort record —
        leaving exactly the on-disk state :meth:`recover` must handle.
        """
        if not isinstance(delta, Batch):
            delta = Batch(list(delta))
        inject("session.pre-apply")
        self._validate(delta)
        seq = self._log(delta)
        apply_starting(self, seq, durable=self._wal is not None)

        txn = (
            SessionTransaction.begin(self._queries.values())
            if self.config.transactional
            else None
        )
        results: Dict[str, IncrementalResult] = {}
        try:
            for registered in self._queries.values():
                inject("session.mid-apply")
                results[registered.name] = self._apply_to_query(registered, delta, seq)
            apply_updates(self.graph, delta)
        except InjectedFault:
            raise  # simulated crash: the process is presumed dead mid-batch
        except Exception as exc:
            self._fail_batch(txn, seq, exc)

        self._batches_applied += 1
        self._notify(results)
        self._run_cadences()
        return results

    @guarded_mutation("session.update_stream")
    def update_stream(self, stream, notify: bool = False) -> Dict[str, Any]:
        """Apply a whole update stream with per-query coalescing.

        ``stream`` is an iterable of :class:`Batch` or unit updates.
        Each registered query drives the stream through its incremental
        algorithm's :meth:`apply_stream` scheduler (coalesced windows,
        per-op kernel-vs-generic routing); the session's reference graph
        receives the raw stream, so all replicas stay identical.
        Returns ``{query name: StreamResult}`` with each query's composed
        ``ΔO``; listeners are *not* called per op — pass ``notify=True``
        to deliver each query's composed result to its listeners once,
        after the whole stream committed (the serve writer thread's
        delivery mode; a raising listener is isolated exactly as in
        :meth:`update`).

        The stream enjoys the same guarantees as :meth:`update`: every
        batch is validated (against the graph *as the stream leaves it*,
        simulated on a scratch copy), WAL-logged, and the whole stream is
        applied under one transaction — a failure anywhere rolls back to
        the pre-stream snapshot and aborts every logged batch.
        """
        stream = [
            item if isinstance(item, Batch) else Batch([item]) for item in stream
        ]
        if not stream:
            return {}
        if all(len(batch) == 0 for batch in stream):
            # Seq-only window: a shard receiving the empty sub-batches of
            # a window it does not participate in (repro.parallel.router)
            # must advance its WAL seq in lockstep with the global seq,
            # but there is no ΔG — skip the scratch copy, the transaction
            # snapshots, and the per-query schedulers entirely so an idle
            # shard's per-window cost does not scale with its fragment.
            seqs = [self._log(batch) for batch in stream]
            apply_starting(self, seqs[-1], durable=self._wal is not None)
            self._batches_applied += len(stream)
            self._run_cadences()
            return {}
        scratch = self.graph.copy()
        for batch in stream:
            self._validate(batch, graph=scratch)
            apply_updates(scratch, batch)
        seqs = [self._log(batch) for batch in stream]
        apply_starting(self, seqs[-1], durable=self._wal is not None)

        txn = (
            SessionTransaction.begin(self._queries.values())
            if self.config.transactional
            else None
        )
        results: Dict[str, Any] = {}
        try:
            for registered in self._queries.values():
                if registered.quarantined:
                    continue  # recomputed once, off the final graph, below
                if hasattr(registered.incremental, "apply_stream"):
                    results[registered.name] = registered.incremental.apply_stream(
                        registered.graph, registered.state, stream, registered.query
                    )
                else:  # non-spec incrementals (IncDFS, ...) apply op by op
                    for batch in stream:
                        results[registered.name] = registered.incremental.apply(
                            registered.graph, registered.state, batch, registered.query
                        )
            for batch in stream:
                apply_updates(self.graph, batch)
                self._batches_applied += 1
            for registered in self._queries.values():
                if registered.quarantined:
                    results[registered.name] = self._recompute(registered, None, self._seq)
        except InjectedFault:
            raise
        except Exception as exc:
            self._fail_batch(txn, seqs, exc)
        if notify:
            self._notify(results)
        self._run_cadences()
        return results

    @guarded_mutation("session.absorb")
    def absorb(
        self,
        assignments: Dict[str, Dict[Hashable, Any]],
        monotone: bool = False,
        scopes: Optional[Dict[str, Iterable[Hashable]]] = None,
    ) -> Dict[str, IncrementalResult]:
        """Absorb authoritative external values into named queries' states.

        ``assignments`` maps query name → ``{variable: value}``.  This is
        the worker half of the sharded tier's boundary-delta exchange
        (:mod:`repro.parallel`): the router sends each shard the merged
        owner values for its replicas, and the shard folds them in via
        :func:`repro.parallel.boundary.absorb_values` — repair for raised
        values, plain propagation for improvements — then resumes its
        local fixpoint.  Only spec-backed queries can absorb (a typed
        :class:`~repro.errors.ShardingError` otherwise).  Absorbs are
        *not* WAL-logged: they carry no graph delta, and recovery
        re-derives them by a full re-exchange across shards.

        ``scopes`` optionally adds per-query key sets to the resumed
        fixpoint's scope (the refine half of the router's invalidation
        protocol: previously-reset keys re-derive even if no pin landed
        on them this round).
        """
        from .parallel.boundary import absorb_values

        results: Dict[str, IncrementalResult] = {}
        names = set(assignments)
        if scopes:
            names.update(scopes)
        for name in names:
            registered, spec = self._sharded_query(name)
            results[name] = absorb_values(
                spec,
                registered.graph,
                registered.state,
                assignments.get(name, {}),
                registered.query,
                monotone=monotone,
                extra_scope=scopes.get(name) if scopes else None,
            )
            if hasattr(registered.incremental, "_kernel_ctx"):
                # Absorbed values bypass the dense mirror; never trust it
                # afterwards (same rule as _recompute).
                registered.incremental._kernel_ctx = None
        return results

    @guarded_mutation("session.invalidate")
    def invalidate(
        self,
        assignments: Dict[str, Iterable[Hashable]],
        already: Optional[Dict[str, set]] = None,
    ) -> Dict[str, IncrementalResult]:
        """Transitively reset values anchored on retracted boundary keys.

        ``assignments`` maps query name → keys whose authoritative values
        were *raised* by their owner shard.  Each named key and everything
        locally anchored on it resets to its initial value with no
        re-derivation (:func:`repro.parallel.boundary.invalidate_values`)
        — the first phase of the router's raise protocol; the matching
        refine phase is :meth:`absorb` with ``scopes``.

        ``already`` optionally maps query name → the window-scoped set of
        keys previous invalidation rounds already reset; those are skipped
        (and counted) rather than re-walked, and newly reset keys are
        added to the set in place — see
        :func:`~repro.parallel.boundary.invalidate_values`.
        """
        from .parallel.boundary import invalidate_values

        results: Dict[str, IncrementalResult] = {}
        for name, keys in assignments.items():
            registered, spec = self._sharded_query(name)
            results[name] = invalidate_values(
                spec,
                registered.graph,
                registered.state,
                keys,
                registered.query,
                already=already.get(name) if already is not None else None,
            )
            if hasattr(registered.incremental, "_kernel_ctx"):
                registered.incremental._kernel_ctx = None
        return results

    def _sharded_query(self, name: str):
        """The registered query and its spec, or a typed sharding error."""
        registered = self._query(name)
        spec = getattr(registered.incremental, "spec", None)
        if spec is None:
            raise ShardingError(
                f"query {name!r} ({registered.algorithm}) has no fixpoint "
                "spec; boundary absorption requires a deduced A_Δ"
            )
        return registered, spec

    # ------------------------------------------------------------------
    def _validate(self, delta: Batch, graph: Optional[Graph] = None) -> None:
        policy = self.config.weight_policy
        try:
            validate_batch(
                self.graph if graph is None else graph,
                delta,
                weight_policy=policy,
                forbid_negative=policy == "spec"
                and session_weight_requirements(
                    r.algorithm for r in self._queries.values()
                ),
            )
        except ReproError as exc:
            self.incidents.record("validation-error", detail=str(exc), error=exc)
            raise

    def _log(self, delta: Batch) -> int:
        """WAL-append ``delta`` under the next sequence number."""
        seq = self._seq + 1
        if self._wal is not None:
            try:
                self._wal.append(seq, delta)
            except InjectedFault:
                raise  # crash mid-append: the torn tail is recovery's problem
            except Exception as exc:
                self.incidents.record("wal-error", detail=str(exc), error=exc, seq=seq)
                raise SessionError(f"WAL append for batch {seq} failed: {exc}") from exc
            wal_logged(self, seq)
        self._seq = seq
        return seq

    def _apply_to_query(
        self, registered: RegisteredQuery, delta: Batch, seq: int
    ) -> IncrementalResult:
        """Maintain one query for one batch, degrading per its health."""
        if registered.quarantined:
            return self._recompute(registered, delta, seq)
        # Hand-written incrementals (IncDFS, IncCoreness) have no
        # evaluation counter to budget; only deduced A_Δ takes max_evals.
        budget = (
            {"max_evals": self.config.step_budget}
            if self.config.step_budget is not None
            and isinstance(registered.incremental, IncrementalAlgorithm)
            else {}
        )
        try:
            result = registered.incremental.apply(
                registered.graph, registered.state, delta, registered.query, **budget
            )
            registered.faults = 0
            return result
        except InjectedFault:
            raise
        except FixpointError as exc:
            # A runaway drain (step budget, divergence) is this query's
            # own pathology — quarantine it instead of failing the batch.
            kind = (
                "runaway-drain"
                if "exceeded" in str(exc) or "max_evals" in str(exc)
                else "apply-error"
            )
            self.incidents.record(kind, query=registered.name, detail=str(exc), error=exc, seq=seq)
            return self._quarantine(registered, delta, seq, exc)
        except Exception as exc:
            registered.faults += 1
            if registered.faults >= self.config.quarantine_after:
                self.incidents.record(
                    "apply-error",
                    query=registered.name,
                    detail=f"fault {registered.faults}/{self.config.quarantine_after}: {exc}",
                    error=exc,
                    seq=seq,
                )
                return self._quarantine(registered, delta, seq, exc)
            raise

    def _quarantine(
        self, registered: RegisteredQuery, delta: Optional[Batch], seq: int, exc: BaseException
    ) -> IncrementalResult:
        registered.quarantined = True
        self.incidents.record(
            "quarantine",
            query=registered.name,
            detail=f"incremental path disabled after: {exc}",
            error=exc,
            seq=seq,
        )
        result = self._recompute(registered, delta, seq)
        self.incidents.record(
            "self-heal",
            query=registered.name,
            detail="state recomputed by the batch algorithm",
            seq=seq,
        )
        return result

    def _recompute(
        self, registered: RegisteredQuery, delta: Optional[Batch], seq: int
    ) -> IncrementalResult:
        """Rebuild one query's replica and state from the reference graph.

        Always starts from the session's authoritative ``self.graph``
        (⊕ ``delta`` when the reference graph has not absorbed the batch
        yet), so it is correct even when the query's own replica was torn
        by a failed apply.
        """
        replica = self.graph.copy()
        if delta is not None:
            apply_updates(replica, delta)
        old_values = dict(registered.state.values)
        state = registered.batch.run(replica, registered.query)
        registered.graph = replica
        registered.state = state
        if hasattr(registered.incremental, "_kernel_ctx"):
            registered.incremental._kernel_ctx = None
        return IncrementalResult(changes=_diff_values(old_values, state.values))

    def _fail_batch(self, txn: Optional[SessionTransaction], seqs, exc: Exception) -> None:
        """Roll back (when transactional) and re-raise a failed batch."""
        if isinstance(seqs, int):
            seqs = [seqs]
        seq = seqs[-1] if seqs else -1
        if txn is not None:
            restored = txn.rollback(self._queries.values())
            self.incidents.record(
                "rollback",
                detail=f"batch {seq} failed; {restored} quer{'y' if restored == 1 else 'ies'} restored",
                error=exc,
                seq=seq,
            )
            if self._wal is not None:
                for aborted in seqs:
                    self._wal.abort(aborted)
            raise TransactionError(
                f"batch {seq} failed and was rolled back: {exc}"
            ) from exc
        self.incidents.record("apply-error", detail=str(exc), error=exc, seq=seq)
        raise exc

    def _notify(self, results: Dict[str, IncrementalResult]) -> None:
        """Deliver ΔO to listeners; one raising listener never starves
        the rest (the failure is recorded as an incident instead)."""
        for registered in self._queries.values():
            result = results.get(registered.name)
            for listener in registered.listeners:
                try:
                    inject("session.listener")
                    listener(registered.name, result)
                except Exception as exc:
                    self.incidents.record(
                        "listener-error",
                        query=registered.name,
                        detail=f"listener {getattr(listener, '__name__', listener)!r} raised",
                        error=exc,
                        seq=self._seq,
                    )

    def _run_cadences(self) -> None:
        cfg = self.config
        if (
            self._wal is not None
            and cfg.checkpoint_every
            and self._batches_applied % cfg.checkpoint_every == 0
        ):
            try:
                self.checkpoint()
            except InjectedFault:
                raise
            except Exception:
                pass  # recorded as a checkpoint-error incident
        if cfg.audit_every and self._batches_applied % cfg.audit_every == 0:
            self.audit(sample=cfg.audit_sample)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> Path:
        """Atomically persist the session snapshot; returns its path."""
        if self.config.directory is None:
            raise SessionError(
                "session has no durable directory; pass SessionConfig(directory=...)"
            )
        try:
            return write_checkpoint(
                self.config.directory, self.graph, self._queries.values(), self._seq
            )
        except InjectedFault:
            raise  # crash mid-write: the previous checkpoint is intact
        except Exception as exc:
            self.incidents.record("checkpoint-error", detail=str(exc), error=exc, seq=self._seq)
            raise

    @guarded_mutation("session.close")
    def close(self) -> None:
        """Checkpoint (when durable) and release the WAL handle."""
        if self._wal is not None:
            self.checkpoint()
            self._wal.close()
            self._wal = None

    def _checkpoint_if_durable(self) -> None:
        if self._wal is None:
            return
        try:
            self.checkpoint()
        except InjectedFault:
            raise
        except Exception:
            pass  # recorded as a checkpoint-error incident

    @classmethod
    def recover(
        cls, directory: Union[str, Path], config: Optional[SessionConfig] = None
    ) -> "DynamicGraphSession":
        """Rebuild a session from its durable directory after a crash.

        Loads the last checkpoint (graph + every query's state — no
        batch algorithm re-runs), then replays the WAL tail (records
        with ``seq`` greater than the checkpoint's, skipping aborted
        batches) through the normal per-query incremental path.  A torn
        final WAL record — the signature of a crash mid-append — is
        dropped and recorded as a ``wal-torn-tail`` incident; corruption
        anywhere else raises :class:`~repro.errors.RecoveryError`.

        By Lemma 2 the replayed applies converge to the same fixpoints a
        from-scratch batch run on the final graph would produce, which is
        exactly what the crash-recovery suite asserts.
        """
        directory = Path(directory)
        if (directory / SHARDING_FILE).exists():
            raise ShardedDirectoryError(
                f"{directory} is a sharded session directory (it holds a "
                f"{SHARDING_FILE} manifest); recover it with "
                "repro.parallel.ShardedSession.recover or `repro recover`"
            )
        doc = load_checkpoint(directory)
        if config is None:
            config = SessionConfig(directory=directory)
        elif config.directory is None:
            config = replace(config, directory=directory)

        wal_path = directory / WAL_FILE
        entries, torn = WriteAheadLog.replay(wal_path, after_seq=doc["seq"])

        session = cls.__new__(cls)
        session.graph = doc["graph"]
        session.config = config
        session._queries = {}
        session._batches_applied = 0
        session.incidents = IncidentLog(config.max_incidents)
        session._wal = None
        session._seq = max(doc["seq"], WriteAheadLog.last_seq(wal_path))

        for entry in doc["queries"]:
            try:
                batch_factory, inc_factory = ALGORITHM_PAIRS[entry["algorithm"]]
            except KeyError:
                raise RecoveryError(
                    f"checkpoint names unknown algorithm {entry['algorithm']!r}"
                ) from None
            session._queries[entry["name"]] = RegisteredQuery(
                name=entry["name"],
                batch=batch_factory(),
                incremental=inc_factory(),
                query=entry["query"],
                state=entry["state"],
                graph=session.graph.copy(),
                algorithm=entry["algorithm"],
                quarantined=entry["quarantined"],
            )

        for seq, delta in entries:
            try:
                for registered in session._queries.values():
                    session._apply_to_query(registered, delta, seq)
                apply_updates(session.graph, delta)
            except Exception as exc:
                raise RecoveryError(
                    f"replaying WAL batch {seq} failed: {exc!r}"
                ) from exc
            session._batches_applied += 1
        if torn:
            session.incidents.record(
                "wal-torn-tail",
                detail=f"dropped torn final record of {wal_path}",
                seq=session._seq,
            )
            # Drop the partial line so future appends don't splice into it.
            text = wal_path.read_text()
            cut = text.rfind("\n") + 1
            wal_path.write_text(text[:cut])

        session._wal = WriteAheadLog(wal_path, fsync=config.fsync)
        # Fold the replayed tail into a fresh checkpoint immediately.
        session._checkpoint_if_durable()
        return session

    # ------------------------------------------------------------------
    # Audits and healing
    # ------------------------------------------------------------------
    def audit(
        self,
        full: bool = False,
        sample: Optional[int] = None,
        heal: bool = True,
    ) -> AuditReport:
        """Check every query's state against the σ_A fixpoint invariant.

        The default probe re-evaluates a ``sample`` of each spec-backed
        query's update functions against the live assignment and compares
        the variable set to ``Ψ_A(G)``; ``full=True`` (and every query
        without a spec, e.g. DFS) diffs against a from-scratch batch run
        instead.  Divergent queries are recorded, quarantined, and — with
        ``heal=True`` — immediately self-healed by batch recomputation.
        """
        if sample is None:
            sample = self.config.audit_sample
        report = AuditReport()
        for registered in self._queries.values():
            spec = getattr(registered.batch, "spec", None)
            if spec is not None and not full:
                entry = sigma_audit(
                    spec, registered.graph, registered.state, registered.query, sample=sample
                )
            else:
                entry = full_audit(
                    registered.batch, registered.graph, registered.state, registered.query
                )
            entry.query = registered.name
            if not entry.clean:
                self.incidents.record(
                    "audit-divergence",
                    query=registered.name,
                    detail=f"{len(entry.findings)} finding(s), e.g. "
                    f"{entry.findings[0].kind} at {entry.findings[0].key!r}",
                    seq=self._seq,
                )
                registered.quarantined = True
                if heal:
                    self._recompute(registered, None, self._seq)
                    entry.healed = True
                    self.incidents.record(
                        "self-heal",
                        query=registered.name,
                        detail="divergent state recomputed by the batch algorithm",
                        seq=self._seq,
                    )
            report.entries.append(entry)
        return report

    @guarded_mutation("session.heal")
    def heal(self, name: str) -> None:
        """Recompute a quarantined query and restore its incremental path."""
        registered = self._query(name)
        self._recompute(registered, None, self._seq)
        registered.quarantined = False
        registered.faults = 0
        self.incidents.record("healed", query=name, detail="quarantine lifted", seq=self._seq)

    # ------------------------------------------------------------------
    def answer(self, name: str) -> Any:
        """The current ``Q(G)`` of a registered query, as a fresh snapshot.

        The returned object shares **no mutable structure** with the live
        fixpoint state: extraction runs over an atomically-copied value
        map (``dict(values)`` is atomic under the GIL), so a reader on
        another thread can never observe a value map that an in-flight
        :meth:`update` mutates under its feet, and mutating the returned
        answer never corrupts the session.  Note this only makes the
        *container* safe — a concurrent reader can still observe a
        committed-but-mid-stream version; the serving layer
        (:mod:`repro.serve`) layers prefix-consistent snapshot isolation
        on top for that.
        """
        registered = self._query(name)
        state = registered.state
        snapshot = FixpointState()
        snapshot.values = dict(state.values)
        snapshot.timestamps = state.timestamps
        snapshot.clock = state.clock
        return registered.batch.answer(snapshot, registered.graph, registered.query)

    @property
    def batches_applied(self) -> int:
        return self._batches_applied

    @property
    def seq(self) -> int:
        """Sequence number of the last batch issued (-1 before any).

        This is the WAL sequence number for durable sessions and the same
        monotonic counter for in-memory ones — the version tag the serving
        layer stamps on published answer snapshots, and the coordinate in
        which "prefix-consistent at seq s" is defined.
        """
        return self._seq

    def __repr__(self) -> str:
        return (
            f"DynamicGraphSession(|V|={self.graph.num_nodes}, "
            f"queries={list(self._queries)}, batches={self._batches_applied})"
        )
