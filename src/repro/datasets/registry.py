"""Laptop-scale proxies of the paper's six datasets.

The paper evaluates on LiveJournal (LJ), DBPedia (DP), Orkut (OKT),
Twitter-2010 (TW), Friendster (FS), and the temporal Wiki-DE (WD), at
sizes from 54M to 1.8B edges.  Pure Python cannot replay billions of
edges, and the raw dumps are not redistributable, so this registry
builds *synthetic proxies* that preserve the structural property each
experiment depends on (see DESIGN.md §2):

=====  ============================  =================================
Name   Paper dataset                 Proxy construction
=====  ============================  =================================
LJ     LiveJournal social network    Barabási–Albert, undirected
DP     DBPedia knowledge base        R-MAT, directed, Zipfian labels
OKT    Orkut social network          Barabási–Albert, denser
TW     Twitter-2010                  R-MAT, directed, heavy skew
FS     Friendster gaming network     Barabási–Albert, largest proxy
WD     Wiki-DE temporal graph        synthetic temporal stream
                                     (81% insertions / 19% deletions)
=====  ============================  =================================

All proxies are deterministic (fixed seeds) and scalable via the
``scale`` parameter (≈ multiplies node count).  Every graph carries node
labels from a 5-letter alphabet and positive edge weights, so each is
usable for all five query classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Union

from ..errors import DatasetError
from ..graph.graph import Graph
from ..graph.temporal import TemporalGraph
from ..generators.random_graphs import (
    assign_labels,
    assign_weights,
    barabasi_albert,
    rmat,
)
from ..generators.temporal import synthetic_temporal

Loader = Callable[[float], Union[Graph, TemporalGraph]]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry for one proxy dataset."""

    name: str
    paper_dataset: str
    directed: bool
    temporal: bool
    description: str
    _loader: Loader

    def load(self, scale: float = 1.0) -> Union[Graph, TemporalGraph]:
        if scale <= 0:
            raise DatasetError(f"{self.name}: scale must be positive")
        return self._loader(scale)


def _decorate(graph: Graph, seed: int, zipf: bool = False) -> Graph:
    assign_labels(graph, seed=seed, zipf=zipf)
    assign_weights(graph, seed=seed + 1)
    return graph


def _lj(scale: float) -> Graph:
    n = max(10, int(1500 * scale))
    return _decorate(barabasi_albert(n, 7, seed=101), seed=102)


def _dp(scale: float) -> Graph:
    import math

    s = max(4, int(math.log2(max(16, 1200 * scale))))
    return _decorate(rmat(s, edge_factor=9, directed=True, seed=201), seed=202, zipf=True)


def _okt(scale: float) -> Graph:
    n = max(10, int(1000 * scale))
    return _decorate(barabasi_albert(n, 12, seed=301), seed=302)


def _tw(scale: float) -> Graph:
    import math

    s = max(4, int(math.log2(max(16, 2000 * scale))))
    return _decorate(rmat(s, edge_factor=11, a=0.6, b=0.18, c=0.18, directed=True, seed=401), seed=402)


def _fs(scale: float) -> Graph:
    n = max(10, int(2500 * scale))
    return _decorate(barabasi_albert(n, 9, seed=501), seed=502)


def _wd(scale: float) -> TemporalGraph:
    base = _decorate(barabasi_albert(max(10, int(1200 * scale)), 6, seed=601), seed=602)
    # 5 "months" of events; per-month volume ≈ 1.9% of |G| as measured
    # in the paper, with its 81/19 insertion/deletion mix.
    events = max(10, int(0.019 * 5 * base.size))
    return synthetic_temporal(base, events, insert_fraction=0.81, horizon=5.0, seed=603)


_REGISTRY: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(DatasetSpec("LJ", "LiveJournal", False, False, "social network proxy (BA, power law)", _lj))
_register(DatasetSpec("DP", "DBPedia", True, False, "knowledge base proxy (R-MAT, Zipf labels)", _dp))
_register(DatasetSpec("OKT", "Orkut", False, False, "dense social network proxy (BA)", _okt))
_register(DatasetSpec("TW", "Twitter-2010", True, False, "heavy-skew web proxy (R-MAT)", _tw))
_register(DatasetSpec("FS", "Friendster", False, False, "largest social proxy (BA)", _fs))
_register(DatasetSpec("WD", "Wiki-DE", False, True, "temporal hyperlink stream proxy", _wd))


def available() -> List[str]:
    """Names of all registered datasets, in the paper's order."""
    return list(_REGISTRY)


def spec(name: str) -> DatasetSpec:
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise DatasetError(f"unknown dataset {name!r}; available: {', '.join(_REGISTRY)}") from None


def load(name: str, scale: float = 1.0) -> Union[Graph, TemporalGraph]:
    """Materialize a proxy dataset.

    >>> g = load("LJ", scale=0.05)
    >>> g.num_nodes > 0
    True
    """
    return spec(name).load(scale)
