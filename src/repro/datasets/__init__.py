"""Deterministic proxy datasets mirroring the paper's six graphs."""

from .registry import DatasetSpec, available, load, spec

__all__ = ["DatasetSpec", "available", "load", "spec"]
