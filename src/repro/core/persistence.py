"""Fixpoint-state persistence.

A production dynamic-graph service computes the batch fixpoint once and
then answers update batches for days; it must survive restarts without
re-running the batch algorithm.  This module serializes a
:class:`~repro.core.state.FixpointState` — values, timestamps, clock —
to JSON.

Keys and values of status variables can be arbitrary Python objects, so
the encoder handles the shapes this library actually produces: ints,
floats (incl. infinities), strings, booleans, ``None``, and (nested)
tuples — which covers node ids, Sim pairs ``(v, u)``, LCC keys
``('d', v)``, DFS intervals, and parent entries.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, IO, Union

from ..errors import ReproError
from .state import FixpointState

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _encode(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"t": [_encode(v) for v in value]}
    if isinstance(value, float):
        # Non-finite floats are spelled out as strings: the JSON spec has
        # no NaN/Infinity literals, and json.dumps would otherwise emit
        # the non-standard ``NaN`` token that strict parsers reject.
        if math.isnan(value):
            return {"f": "nan"}
        if math.isinf(value):
            return {"f": "inf" if value > 0 else "-inf"}
        return {"f": value}
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    raise ReproError(f"cannot persist value of type {type(value).__name__}: {value!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "t" in value:
            return tuple(_decode(v) for v in value["t"])
        if "f" in value:
            raw = value["f"]
            if raw == "inf":
                return math.inf
            if raw == "-inf":
                return -math.inf
            if raw == "nan":
                return math.nan
            return float(raw)
        raise ReproError(f"unknown encoded value {value!r}")
    return value


def dump_state(state: FixpointState, target: Union[PathLike, IO[str]]) -> None:
    """Serialize ``state`` to ``target`` (path or open text file).

    >>> import io
    >>> from repro.core.state import FixpointState
    >>> s = FixpointState(); s.seed('x', 1.5); s.set('x', float('inf'))
    >>> buf = io.StringIO(); dump_state(s, buf)
    >>> _ = buf.seek(0); load_state(buf).values['x']
    inf
    """
    doc = {
        "version": _FORMAT_VERSION,
        "clock": state.clock,
        "rounds": state.rounds,
        "entries": [
            [_encode(key), _encode(value), state.timestamps.get(key, -1)]
            for key, value in state.values.items()
        ],
    }
    if hasattr(target, "write"):
        json.dump(doc, target)
    else:
        with open(target, "w") as f:
            json.dump(doc, f)


def load_state(source: Union[PathLike, IO[str]]) -> FixpointState:
    """Deserialize a state written by :func:`dump_state`."""
    if hasattr(source, "read"):
        doc = json.load(source)
    else:
        with open(source) as f:
            doc = json.load(f)
    if doc.get("version") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported state format version {doc.get('version')!r}; this "
            f"build reads version {_FORMAT_VERSION}.  The file was written "
            "by an incompatible (likely newer) release — upgrade, or "
            "re-run the batch algorithm to regenerate the state."
        )
    state = FixpointState()
    for raw_key, raw_value, timestamp in doc["entries"]:
        key = _decode(raw_key)
        state.values[key] = _decode(raw_value)
        state.timestamps[key] = timestamp
    state.clock = doc["clock"]
    state.rounds = doc.get("rounds", 0)
    return state
