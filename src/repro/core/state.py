"""Fixpoint state ``D_A = (S_A, R_A)`` with timestamps and instrumentation.

The paper's *status* ``D_A`` tracks the computation of a fixpoint
algorithm: the data structures ``S_A`` (here: the variable table itself)
and the partial results ``R_A`` (the variable values after each round).
Weakly deducible incrementalizations additionally record a *timestamp*
per variable — the logical time of its last change — from which the
topological order ``<_C`` is derived (Section 4).

:class:`FixpointState` is produced by a batch run and consumed (and
updated in place) by the deduced incremental algorithm, so repeated
update batches can be applied one after another, each starting from the
previous fixpoint.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional

from ..metrics.counters import AccessCounter, NullCounter

Key = Hashable
Value = Any


class FixpointState:
    """Variable values, timestamps, and access instrumentation.

    Parameters
    ----------
    counter:
        The :class:`~repro.metrics.counters.AccessCounter` receiving
        read/write events.  Defaults to a no-op counter.

    Notes
    -----
    Timestamps are a logical clock: the clock ticks on every value write,
    and a variable's timestamp is the tick of its last change.  Variables
    never written retain timestamp ``-1`` (the paper's convention for
    Sim variables that start false).
    """

    __slots__ = ("values", "timestamps", "clock", "counter", "rounds", "changelog")

    def __init__(self, counter: Optional[AccessCounter] = None) -> None:
        self.values: Dict[Key, Value] = {}
        self.timestamps: Dict[Key, int] = {}
        self.clock = 0
        self.counter: AccessCounter = counter if counter is not None else NullCounter()
        self.rounds = 0
        # When set to a dict, every write records {key: value_before_first_write}.
        self.changelog: Optional[Dict[Key, Value]] = None

    # ------------------------------------------------------------------
    def seed(self, key: Key, value: Value) -> None:
        """Initialize a variable to ``x^⊥`` without counting or timestamping."""
        self.values[key] = value
        self.timestamps[key] = -1

    def get(self, key: Key) -> Value:
        """Counted read of a variable."""
        self.counter.on_read(key)
        return self.values[key]

    def peek(self, key: Key) -> Value:
        """Uncounted read, for result extraction and reporting."""
        return self.values[key]

    def set(self, key: Key, value: Value) -> None:
        """Counted, timestamped write of a variable."""
        if self.changelog is not None and key not in self.changelog:
            self.changelog[key] = self.values.get(key)
        self.counter.on_write(key)
        self.values[key] = value
        self.timestamps[key] = self.clock
        self.clock += 1

    def timestamp(self, key: Key) -> int:
        return self.timestamps.get(key, -1)

    def replay(self, writes) -> None:
        """Apply an ordered iterable of ``(key, value)`` writes via :meth:`set`.

        This is the mirror protocol of the dense kernel engine: its hot
        loops work on flat arrays and log every accepted write, then
        replay the log here so the dict state carries the same final
        values *and* a timestamp linearization consistent with the
        propagation order — which the weakly deducible specs (CC, Reach)
        read back as ``<_C`` on the next incremental apply.  Replaying
        transient writes (values later overwritten) is deliberate: their
        timestamps are provenance, not noise.
        """
        if self.changelog is None and isinstance(self.counter, NullCounter):
            # Uninstrumented fast path: identical effect to per-write
            # :meth:`set` minus the method-call and branch overhead.
            values, timestamps = self.values, self.timestamps
            clock = self.clock
            for key, value in writes:
                values[key] = value
                timestamps[key] = clock
                clock += 1
            self.clock = clock
            return
        for key, value in writes:
            self.set(key, value)

    def drop(self, key: Key) -> None:
        """Retire a variable (vertex deletion)."""
        if self.changelog is not None and key not in self.changelog:
            self.changelog[key] = self.values.get(key)
        self.values.pop(key, None)
        self.timestamps.pop(key, None)

    def __contains__(self, key: Key) -> bool:
        return key in self.values

    def __len__(self) -> int:
        return len(self.values)

    # ------------------------------------------------------------------
    def copy(self) -> "FixpointState":
        """A deep copy sharing no mutable structure (counter is fresh)."""
        clone = FixpointState()
        clone.values = dict(self.values)
        clone.timestamps = dict(self.timestamps)
        clone.clock = self.clock
        clone.rounds = self.rounds
        return clone

    def start_changelog(self) -> Dict[Key, Value]:
        """Begin recording ΔO; returns the live changelog dict."""
        self.changelog = {}
        return self.changelog

    def stop_changelog(self) -> Dict[Key, Value]:
        """Stop recording and return {key: old_value} for every changed key."""
        log = self.changelog if self.changelog is not None else {}
        self.changelog = None
        return log

    def __repr__(self) -> str:
        return f"FixpointState(|Ψ|={len(self.values)}, clock={self.clock}, rounds={self.rounds})"
