"""The fixpoint-algorithm abstraction (Section 3 of the paper).

A batch algorithm ``A ∈ Φ`` is described to this library as a
:class:`FixpointSpec`: the set of status variables ``Ψ_A``, the update
function ``f_{x_i}`` with its input set ``Y_{x_i}``, the scheduling
discipline of the step function ``f_A``, and — for the bounded
incrementalization of Section 4 — the partial order making the algorithm
contracting and monotonic, the anchor sets ``C_{x_i}``, and the mapping
from updates ``ΔG`` to variables whose input sets evolve.

Given a spec, :func:`repro.core.engine.run_fixpoint` executes the batch
computation (Eq. 1), and :class:`repro.core.incremental.IncrementalAlgorithm`
deduces the incremental counterpart ``A_Δ`` (Eqs. 2–3) using the generic
initial scope function of Figure 4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Hashable, Iterable, Optional

from ..graph.graph import Graph
from ..graph.updates import Batch
from .orders import PartialOrder

Key = Hashable
Value = Any
ValueGetter = Callable[[Key], Value]


class FixpointSpec(ABC):
    """Declarative description of a fixpoint algorithm ``A``.

    Subclasses must define the *model* hooks (variables, initial values,
    update functions, dependency structure).  For bounded
    incrementalization (Theorem 3), they additionally define the *anchor*
    hooks — :meth:`order_key`, :meth:`anchor_dependents`, and
    :meth:`changed_input_keys` — which together implement the topological
    order ``<_C`` and the change-propagation capture of Section 4.

    Class attributes
    ----------------
    name:
        Human-readable algorithm name (used in benchmark tables).
    order:
        The partial order ``⪯`` under which the algorithm is contracting
        and monotonic, or ``None`` for non-contracting specs (e.g. LCC)
        that rely on Theorem 1 only.
    uses_timestamps:
        True for *weakly deducible* incrementalizations that derive
        ``<_C`` from timestamps (CC, Sim); false for *deducible* ones that
        derive it from final values (SSSP, DFS, LCC).
    """

    name: str = "fixpoint"
    order: Optional[PartialOrder] = None
    uses_timestamps: bool = False
    #: Whether the scope function runs the Figure-4 repair loop.  Specs
    #: whose update functions read the graph only (no status-variable
    #: inputs, e.g. LCC) set this to False: seeding the scope is enough,
    #: since the resumed step function recomputes each seed exactly once.
    repair_with_scope_function: bool = True
    #: Whether :meth:`edge_candidate` gives an exact single-input bound on
    #: ``f``.  When true the engine propagates changes *push*-style —
    #: relaxing one dependent per edge like Dijkstra — instead of
    #: re-pulling whole input sets, which matters on high-degree hubs.
    supports_push: bool = False
    #: Lint rules (ids or names, see :mod:`repro.lint.rules`) that this
    #: spec deliberately opts out of.  Suppressions are a public admission
    #: — each one should carry a comment citing why the contract is waived
    #: (e.g. SSWP waives ``scope-unbounded``: its ``min``-saturating update
    #: function is only *semi*-bounded, see the module docstring there).
    lint_suppress: frozenset = frozenset()

    # ------------------------------------------------------------------
    # Model hooks: Ψ_A, x^⊥, f_{x_i}, Y_{x_i}, scheduling
    # ------------------------------------------------------------------
    @abstractmethod
    def variables(self, graph: Graph, query: Any) -> Iterable[Key]:
        """Enumerate the status variables ``Ψ_A``."""

    @abstractmethod
    def initial_value(self, key: Key, graph: Graph, query: Any) -> Value:
        """The initial value ``x_i^⊥`` (the top of ``⪯`` for this variable)."""

    @abstractmethod
    def update(self, key: Key, value_of: ValueGetter, graph: Graph, query: Any) -> Value:
        """Evaluate ``f_{x_i}(Y_{x_i})``.

        ``value_of`` reads the current value of any status variable; every
        call is counted by the engine's instrumentation.  The function
        must be *pure* given the graph and the read variables.
        """

    @abstractmethod
    def dependents(self, key: Key, graph: Graph, query: Any) -> Iterable[Key]:
        """Variables ``x_j`` whose input set ``Y_{x_j}`` contains ``x_i``.

        When ``x_i`` changes, these are added to the scope ``H`` by the
        step function.
        """

    def input_keys(self, key: Key, graph: Graph, query: Any) -> Optional[Iterable[Key]]:
        """Enumerate the input set ``Y_{x_i}`` of :meth:`update` explicitly.

        The forward image of :meth:`dependents`: ``y ∈ input_keys(x)`` iff
        ``x ∈ dependents(y)``.  Declaring it (a superset is fine) lets
        :mod:`repro.lint` verify two C1 preconditions that the framework
        otherwise has to trust — that ``update`` reads no undeclared
        status variables, and that :meth:`changed_input_keys` really
        covers every variable whose input set evolved under ``ΔG``.

        Return ``None`` (the default) to leave the input set implicit;
        the corresponding lint rules are then skipped.
        """
        return None

    def initial_scope(self, graph: Graph, query: Any) -> Iterable[Key]:
        """``H⁰`` for the batch run — variables that may violate σ initially.

        Defaults to all variables, which is always sound.
        """
        return self.variables(graph, query)

    def edge_candidate(
        self, dep: Key, cause: Key, cause_value: Value, graph: Graph, query: Any
    ) -> Value:
        """The contribution of ``cause``'s new value to dependent ``dep``.

        Only used when :attr:`supports_push` is true.  Must satisfy
        ``f_{dep}(Y) = min_⪯ over inputs of edge_candidate(...)`` so that
        push-based relaxation reaches the same fixpoint as pull-based
        re-evaluation (e.g. SSSP: ``cause_value + L(cause, dep)``).
        """
        raise NotImplementedError(f"{type(self).__name__} does not support push propagation")

    def relaxation_pairs(self, delta: Batch, graph_new: Graph, query: Any):
        """Per-edge relaxations replacing full evaluations of insertion seeds.

        For push-capable specs, a variable whose input set only *grew* can
        be updated by relaxing the new inputs alone: ``f(Y ∪ {y}) =
        min_⪯(f(Y), candidate(y))`` and the stored value already equals
        ``f(Y)``.  Return ``(cause, dep)`` pairs — one per inserted edge
        direction — and the engine will relax instead of re-pulling the
        seed's whole input set.  Return ``None`` (the default) to fall
        back to full seed evaluation.
        """
        return None

    def priority(self, key: Key, cause_value: Value) -> Any:
        """Scheduling priority for pushing ``key`` into the scope.

        ``cause_value`` is the just-written value of the variable whose
        change scheduled ``key``.  Return ``None`` (the default) for FIFO
        scheduling; return a sortable value for priority scheduling (e.g.
        Dijkstra pops in order of settled distance).
        """
        return None

    def kernel(self):
        """Declare a dense scalar kernel for this spec, or ``None``.

        Push-capable node-keyed specs whose ``edge_candidate`` reduces to
        one of the scalar combine operators of
        :mod:`repro.kernels.spec` can return a
        :class:`~repro.kernels.spec.KernelSpec` here; the engines then
        lower eligible runs onto flat CSR arrays with no per-edge Python
        dispatch (see ``docs/performance.md``).  The declaration is a
        *claim* checked by lint rule S008 — the scalar kernel must agree
        with ``edge_candidate`` on sampled inputs — and by the
        differential tests.  The default ``None`` keeps the spec on the
        generic interpreter.
        """
        return None

    # ------------------------------------------------------------------
    # Anchor hooks: <_C, C_{x_i}, and ΔG → evolved input sets (Section 4)
    # ------------------------------------------------------------------
    def order_key(self, key: Key, value: Value, timestamp: int) -> Any:
        """The position of ``x_i`` in the topological order ``<_C``.

        Deducible specs derive this from the final value (e.g. SSSP uses
        the distance itself); weakly deducible specs use the timestamp.
        The default uses the timestamp, which is always a valid
        linearization of the batch run's change propagation.
        """
        return timestamp

    def changed_input_keys(self, delta: Batch, graph_new: Graph, query: Any) -> Iterable[Key]:
        """Variables whose update-function input sets evolved due to ``ΔG``.

        This seeds both ``H⁰`` and the repair queue of the scope function
        (Figure 4, line 1).  ``graph_new`` is ``G ⊕ ΔG``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define changed_input_keys; "
            "it cannot be incrementalized with the generic scope function"
        )

    def repair_seed_keys(self, delta: Batch, graph_new: Graph, query: Any) -> Iterable[Key]:
        """The subset of changed-input variables that may be *infeasible*.

        A stored value can only violate feasibility when its update
        function could now evaluate *above* it — i.e. when the input set
        changed in the raising direction of ``⪯`` (SSSP/CC: heads of
        deleted edges; Sim: tails of inserted edges).  Only these enter
        the Figure-4 repair queue; the other changed-input variables
        still seed ``H⁰`` for the resumed step function, which handles
        all lowering.  The default is the full changed set, which is
        always correct.
        """
        return self.changed_input_keys(delta, graph_new, query)

    def anchor_dependents(
        self,
        key: Key,
        value_of: ValueGetter,
        timestamp_of: Callable[[Key], int],
        graph_new: Graph,
        query: Any,
    ) -> Iterable[Key]:
        """Variables ``z`` with ``x_i ∈ C_z`` (Figure 4, line 9).

        Consulted when ``x_i`` is found infeasible: every variable whose
        anchor set contains ``x_i`` may be infeasible too.  Only edges of
        the *updated* graph need to be consulted — anchor edges removed by
        ``ΔG`` are already covered by :meth:`changed_input_keys`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define anchor_dependents; "
            "it cannot be incrementalized with the generic scope function"
        )

    def new_variables(self, delta: Batch, graph_new: Graph, query: Any) -> Iterable[Key]:
        """Variables introduced by vertex insertions in ``ΔG``.

        The incremental driver initializes these to ``x^⊥`` before running
        the scope function (Section 4, "Vertex updates").  The default
        returns nothing, which is correct for pure edge updates.
        """
        return ()

    def removed_variables(self, delta: Batch, graph_new: Graph, query: Any) -> Iterable[Key]:
        """Variables retired by vertex deletions in ``ΔG``."""
        return ()

    # ------------------------------------------------------------------
    # Result extraction
    # ------------------------------------------------------------------
    def extract(self, values: dict, graph: Graph, query: Any) -> Any:
        """Turn the fixpoint variable assignment into the query answer Q(G).

        Defaults to returning the raw variable map.
        """
        return dict(values)
