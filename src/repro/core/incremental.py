"""Deducing incremental algorithms ``A_Δ`` from fixpoint specs (Eqs. 2–3).

:class:`IncrementalAlgorithm` packages the paper's construction: given
the fixpoint state of a batch run of ``A`` on ``G`` and updates ``ΔG``,

1. apply ``ΔG`` to the graph (``G ⊕ ΔG``),
2. run the initial scope function ``h`` (Figure 4, via
   :func:`repro.core.scope.initial_scope`) to obtain a feasible status
   ``D⁰`` and the scope ``H⁰``, and
3. resume the *batch* step function ``f_A`` from ``(D⁰, H⁰)`` until the
   new fixpoint (Lemma 2 guarantees convergence to the same result as a
   from-scratch batch run).

The result records the output changes ``ΔO`` such that
``Q(G ⊕ ΔG) = Q(G) ⊕ ΔO`` (the correctness equation of Section 2), plus
separate access counters for the ``h`` phase and the resumed fixpoint —
the split the paper reports in Exp-2(2d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Set, Tuple

from ..errors import IncrementalizationError
from ..graph.graph import Graph
from ..graph.updates import Batch, apply_updates
from ..metrics.counters import AccessCounter, NullCounter
from ..resilience.faults import inject
from .engine import run_batch, run_fixpoint
from .scope import initial_scope
from .spec import FixpointSpec
from .state import FixpointState


@dataclass
class IncrementalResult:
    """Outcome of one incremental application of ``ΔG``.

    Attributes
    ----------
    changes:
        ``ΔO`` as ``{variable: (old_value, new_value)}`` — only variables
        whose value actually differs between the two fixpoints (plus
        retired/created variables, with ``None`` on the missing side).
    scope:
        The initial scope ``H⁰`` produced by ``h``.
    h_counter / engine_counter:
        Data-access counters for the scope-function phase and the resumed
        step-function phase respectively.
    kernel_stats:
        ``None`` for generic applies; for kernel applies a dict with the
        drain tier used (``"scalar"``/``"sparse"``/``"dense"``) and the
        per-op touched-node counters (``touched``, ``writes``, ``pops``,
        ``np_rounds``, ``scanned``) — the |AFF|-proportionality evidence.
    """

    changes: Dict[Hashable, Tuple[Any, Any]] = field(default_factory=dict)
    scope: Set[Hashable] = field(default_factory=set)
    h_counter: AccessCounter = field(default_factory=AccessCounter)
    engine_counter: AccessCounter = field(default_factory=AccessCounter)
    kernel_stats: Optional[Dict[str, Any]] = None

    @property
    def affected_size(self) -> int:
        """Realized |AFF| of this apply: touched nodes when the kernel
        measured them, otherwise |ΔO| ∪ |H⁰| from the generic driver."""
        if self.kernel_stats is not None:
            return self.kernel_stats["touched"]
        return len(set(self.changes) | self.scope)

    @property
    def total_accesses(self) -> int:
        return self.h_counter.total + self.engine_counter.total

    @property
    def scope_share(self) -> float:
        """Fraction of the total cost spent in ``h`` (Exp-2(2d))."""
        total = self.total_accesses
        return self.h_counter.total / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"IncrementalResult(|ΔO|={len(self.changes)}, |H⁰|={len(self.scope)}, "
            f"accesses={self.total_accesses})"
        )


class BatchAlgorithm:
    """A runnable batch algorithm ``A`` wrapping a :class:`FixpointSpec`.

    ``engine`` selects the execution path for :meth:`run` — ``"auto"``
    (dense CSR kernels when the spec declares one and no counter is
    live), ``"generic"``, or ``"kernel"`` (raise rather than fall back).
    """

    def __init__(self, spec: FixpointSpec, engine: str = "auto") -> None:
        self.spec = spec
        self.engine = engine

    @property
    def name(self) -> str:
        return self.spec.name

    def run(self, graph: Graph, query: Any = None, counter: AccessCounter = None) -> FixpointState:
        """Compute the fixpoint ``D^r_A`` of ``A`` on ``(Q, G)``."""
        return run_batch(self.spec, graph, query, counter=counter, engine=self.engine)

    def answer(self, state: FixpointState, graph: Graph, query: Any = None) -> Any:
        """Extract ``Q(G)`` from a fixpoint state."""
        return self.spec.extract(state.values, graph, query)

    def __call__(self, graph: Graph, query: Any = None) -> Any:
        """Compute and extract ``Q(G)`` in one call."""
        return self.answer(self.run(graph, query), graph, query)


class IncrementalAlgorithm:
    """The incremental algorithm ``A_Δ`` deduced from a spec.

    ``A_Δ`` is *deducible* when the spec does not use timestamps and
    *weakly deducible* when it does (Section 4); :attr:`deducible`
    reports which.

    Usage::

        batch = BatchAlgorithm(spec)
        inc = IncrementalAlgorithm(spec)
        state = batch.run(graph, query)
        result = inc.apply(graph, state, delta, query)   # mutates graph+state

    After :meth:`apply`, ``graph`` is ``G ⊕ ΔG`` and ``state`` is the new
    fixpoint, so batches can be applied repeatedly.
    """

    def __init__(self, spec: FixpointSpec, engine: str = "auto", drain: str = "auto") -> None:
        self.spec = spec
        self.engine = engine
        # Kernel drain tier: "auto" | "scalar" | "sparse" | "dense".
        self.drain = drain
        # Dense context reused across applies (kernels.incremental); None
        # until the first kernel apply, dropped when it goes stale.
        self._kernel_ctx = None
        # Realized-|AFF| EWMA maintained by apply_stream's scheduler.
        self._aff_ewma = 0.0

    @property
    def name(self) -> str:
        return f"Inc{self.spec.name}"

    @property
    def deducible(self) -> bool:
        """True for deducible, False for weakly deducible (timestamps)."""
        return not self.spec.uses_timestamps

    def apply(
        self,
        graph: Graph,
        state: FixpointState,
        delta: Batch,
        query: Any = None,
        trace: bool = False,
        measure: bool = False,
        engine: str = None,
        drain: str = None,
        max_evals: Optional[int] = None,
    ) -> IncrementalResult:
        """Apply ``ΔG``; mutate ``graph`` and ``state``; return ``ΔO``.

        ``measure=True`` counts every data access (the paper's cost
        metric, needed for scope-share and boundedness reports);
        ``trace=True`` additionally records *which* variables were
        touched.  Both default off so timed runs carry no instrumentation
        overhead.  ``engine`` and ``drain`` override the instance
        defaults for this one apply — the stream scheduler uses this to
        pick the path per op without reconfiguring the algorithm.
        ``max_evals`` bounds the resumed fixpoint's update-function
        evaluations (a runaway-drain budget; exceeding it raises
        :class:`~repro.errors.FixpointError`); budgeted applies take the
        generic path, where evaluations are countable.
        """
        if engine is None:
            engine = self.engine
        if drain is None:
            drain = self.drain
        if not isinstance(delta, Batch):
            delta = Batch(list(delta))
        if not state.values:
            raise IncrementalizationError(
                "incremental run started from an empty state; run the batch algorithm first"
            )

        counting = measure or trace
        if engine != "generic" and not counting and max_evals is None:
            from ..errors import FixpointError
            from ..kernels.incremental import kernel_apply

            try:
                result, self._kernel_ctx = kernel_apply(
                    self.spec, graph, state, delta, query, self._kernel_ctx, drain=drain
                )
            except BaseException:
                # A strict-apply error may have left the graph partially
                # updated; never trust the mirror afterwards.
                self._kernel_ctx = None
                raise
            if result is not None:
                return result
            if engine == "kernel":
                from ..kernels.engine import unsupported_reason

                raise FixpointError(
                    "engine='kernel' unavailable for this apply: "
                    f"{unsupported_reason(self.spec, graph, query) or 'state not lowerable'}"
                )
        elif engine == "kernel":
            raise IncrementalizationError(
                "engine='kernel' cannot run instrumented (measure/trace require the generic engine)"
            )
        self._kernel_ctx = None  # generic apply invalidates any dense mirror

        result = IncrementalResult(
            h_counter=AccessCounter(trace=trace) if counting else NullCounter(),
            engine_counter=AccessCounter(trace=trace) if counting else NullCounter(),
        )
        delta = delta.expanded(graph)
        apply_updates(graph, delta)
        inject("incremental.mid-apply")  # ΔG committed, fixpoint not yet resumed
        changelog = state.start_changelog()

        saved_counter = state.counter
        try:
            state.counter = result.h_counter
            scope = initial_scope(self.spec, graph, query, state, delta)
            result.scope = scope

            state.counter = result.engine_counter
            relaxations = self.spec.relaxation_pairs(delta, graph, query)
            if relaxations is None:
                engine_scope = scope
            else:
                # Insertion seeds are relaxed per edge; only variables the
                # repair pass touched — plus deletion-derived seeds — need
                # a full evaluation by the resumed step function.
                engine_scope = {
                    key
                    for key in self.spec.repair_seed_keys(delta, graph, query)
                    if key in state.values
                }
                engine_scope.update(key for key in changelog if key in state.values)
            run_fixpoint(
                self.spec,
                graph,
                query,
                state=state,
                scope=engine_scope,
                max_evals=max_evals,
                relaxations=relaxations,
            )
        finally:
            state.counter = saved_counter
            state.stop_changelog()

        for key, old_value in changelog.items():
            new_value = state.values.get(key)
            if old_value != new_value:
                result.changes[key] = (old_value, new_value)
        return result

    def apply_stream(
        self,
        graph: Graph,
        state: FixpointState,
        stream,
        query: Any = None,
        window: int = None,
        engine: str = None,
    ):
        """Apply a whole update stream through the coalescing scheduler.

        ``stream`` yields :class:`Batch` or unit :class:`Update` items.
        Consecutive edge updates are coalesced into normalized windows
        (``window`` ops, default :data:`repro.kernels.scheduler.WINDOW`)
        and each flushed batch is routed kernel-vs-generic from the
        estimated |AFF| plus realized-|AFF| feedback; pass ``engine`` to
        force one path for every apply.  Mutates ``graph`` and ``state``
        like the equivalent :meth:`apply` sequence and returns a
        :class:`~repro.kernels.scheduler.StreamResult` with the composed
        ``ΔO`` and per-apply routing stats.
        """
        from ..kernels.scheduler import WINDOW, schedule_stream

        return schedule_stream(
            self,
            graph,
            state,
            stream,
            query,
            window=WINDOW if window is None else window,
            engine=engine,
        )


def incrementalize(spec: FixpointSpec) -> Tuple[BatchAlgorithm, IncrementalAlgorithm]:
    """The paper's deduction in one call: ``A`` and its ``A_Δ``."""
    return BatchAlgorithm(spec), IncrementalAlgorithm(spec)
