"""The generic step-function driver (Eq. 1 of the paper).

A fixpoint algorithm ``A`` computes

    ``(D^{t+1}, H^{t+1}) = f_A(D^t, Q, G, H^t)``

by repeatedly selecting status variables from the scope ``H``, applying
their update functions, and — whenever a value changes — adding the
affected variables (those whose input sets contain the changed one) back
into the scope.  :func:`run_fixpoint` implements exactly this loop for
any :class:`~repro.core.spec.FixpointSpec`.

Scheduling
----------
The paper's framework leaves the selection policy to the algorithm:
Dijkstra pops the smallest tentative distance, CC uses a plain worklist.
Lemma 2 (Church–Rosser) guarantees that for contracting and monotonic
algorithms *any* schedule converges to the same fixpoint, so the policy
affects efficiency only.  Specs choose via :attr:`FixpointSpec.priority`:
returning ``None`` selects FIFO; returning a sortable value selects a
binary-heap schedule.

Contracting guard
-----------------
For specs with a declared partial order the engine applies only
*downward* moves (``new ≺ old``).  Starting from a feasible status — the
initial ``D^⊥`` of a batch run, or the ``D⁰`` produced by a correct scope
function — upward re-evaluations are transient over-approximations and
skipping them is safe (the variable will be re-evaluated when its inputs
settle); applying them would break the contracting invariant (Eq. 4).
Specs without an order (LCC) get every differing value applied.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Hashable, Iterable, Optional

from ..errors import FixpointError
from ..graph.graph import Graph
from ..metrics.counters import NullCounter
from ..resilience.faults import inject
from .spec import FixpointSpec
from .state import FixpointState


def new_state(spec: FixpointSpec, graph: Graph, query: Any, counter=None) -> FixpointState:
    """Seed ``D^⊥``: every variable of ``Ψ_A`` at its initial value."""
    state = FixpointState(counter=counter)
    for key in spec.variables(graph, query):
        state.seed(key, spec.initial_value(key, graph, query))
    return state


class _Worklist:
    """FIFO or heap-ordered scope ``H`` with lazy duplicate handling.

    FIFO mode deduplicates in-queue keys: re-adding a variable that is
    already awaiting evaluation cannot change the result (the eventual
    evaluation reads the then-current inputs), so the duplicate entry
    would only buy a redundant re-evaluation.  :meth:`push` reports
    whether the key was actually enqueued so callers can keep their
    scope-push counters faithful.  Heap mode keeps duplicates: each entry
    carries the priority of the change that scheduled it, and the stale
    ones are cheap pops against an already-settled value.
    """

    __slots__ = ("_deque", "_heap", "_queued", "_tick")

    def __init__(self, prioritized: bool) -> None:
        self._deque: Optional[deque] = None if prioritized else deque()
        self._heap: Optional[list] = [] if prioritized else None
        self._queued: set = set()
        self._tick = 0

    def push(self, key: Hashable, priority: Any) -> bool:
        if self._heap is not None:
            self._tick += 1
            heapq.heappush(self._heap, (priority, self._tick, key))
            return True
        if key in self._queued:
            return False
        self._queued.add(key)
        self._deque.append(key)
        return True

    def pop(self) -> Hashable:
        if self._heap is not None:
            return heapq.heappop(self._heap)[2]
        key = self._deque.popleft()
        self._queued.discard(key)
        return key

    def __bool__(self) -> bool:
        return bool(self._heap) if self._heap is not None else bool(self._deque)

    def __len__(self) -> int:
        return len(self._heap) if self._heap is not None else len(self._deque)


_ENGINES = ("auto", "generic", "kernel")


def run_fixpoint(
    spec: FixpointSpec,
    graph: Graph,
    query: Any,
    state: Optional[FixpointState] = None,
    scope: Optional[Iterable] = None,
    max_evals: Optional[int] = None,
    relaxations: Optional[Iterable] = None,
    engine: str = "auto",
) -> FixpointState:
    """Run ``A`` (or resume it) until the scope empties.

    Parameters
    ----------
    state:
        ``None`` starts a fresh batch run from ``D^⊥``.  Passing a state
        resumes the fixpoint from it — this is how the deduced incremental
        algorithm reuses the batch step function (Eq. 2).
    scope:
        The initial scope ``H⁰``.  Defaults to ``spec.initial_scope`` for
        fresh runs; must be supplied when resuming.
    max_evals:
        Optional safety valve; exceeding it raises
        :class:`~repro.errors.FixpointError` (useful when developing new
        specs whose update functions are not contracting).
    engine:
        ``"auto"`` (default) lowers fresh, uninstrumented runs of
        kernel-declaring specs onto dense CSR arrays
        (:mod:`repro.kernels.engine`), falling back to the generic
        interpreter otherwise.  ``"generic"`` forces the interpreter;
        ``"kernel"`` demands the dense path and raises
        :class:`~repro.errors.FixpointError` when it is unavailable.

    Returns the (possibly shared) :class:`FixpointState` at the fixpoint.
    """
    if engine not in _ENGINES:
        raise FixpointError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    inject("engine.fixpoint")
    fresh = state is None
    if engine != "generic":
        lowerable = (
            fresh and scope is None and max_evals is None and relaxations is None
        )
        if lowerable:
            from ..kernels.engine import try_run_batch

            kernel_state = try_run_batch(spec, graph, query)
            if kernel_state is not None:
                return kernel_state
        if engine == "kernel":
            if not lowerable:
                raise FixpointError(
                    "engine='kernel' supports only fresh batch runs "
                    "(no state/scope/max_evals/relaxations)"
                )
            from ..kernels.engine import unsupported_reason

            raise FixpointError(
                f"engine='kernel' unavailable: {unsupported_reason(spec, graph, query)}"
            )
    if fresh:
        state = new_state(spec, graph, query)
    if scope is None:
        if not fresh:
            raise FixpointError("resuming a fixpoint requires an explicit scope")
        scope = spec.initial_scope(graph, query)

    order = spec.order
    counter = state.counter
    counting = not isinstance(counter, NullCounter)
    # Probe the scheduling policy once: a spec either always returns None
    # from priority() (FIFO) or never does (heap).
    scope = list(scope)
    prioritized = bool(scope) and spec.priority(scope[0], None) is not None
    if spec.supports_push:
        return _run_push(spec, graph, query, state, scope, prioritized, max_evals, relaxations)
    if relaxations:
        raise FixpointError("relaxations require a push-capable spec")
    work = _Worklist(prioritized)
    for key in scope:
        pushed = work.push(key, spec.priority(key, state.peek(key)) if prioritized else None)
        if pushed and counting:
            counter.on_scope_push(key)

    evals = 0
    value_of = state.get if counting else state.values.__getitem__
    values = state.values
    while work:
        key = work.pop()
        if key not in values:
            continue  # retired by a vertex deletion
        evals += 1
        if max_evals is not None and evals > max_evals:
            raise FixpointError(f"fixpoint exceeded {max_evals} evaluations; spec may diverge")
        if counting:
            counter.on_eval(key)
        new = spec.update(key, value_of, graph, query)
        old = values[key]
        if new == old:
            continue
        if order is not None and not order.leq(new, old):
            # Upward move on a contracting spec: transient over-approximation,
            # skipped (see module docstring).
            continue
        state.set(key, new)
        for dep in spec.dependents(key, graph, query):
            if dep not in values:
                continue
            pushed = work.push(dep, spec.priority(dep, new) if prioritized else None)
            if pushed and counting:
                counter.on_scope_push(dep)
    state.rounds += evals
    return state


def _run_push(
    spec: FixpointSpec,
    graph: Graph,
    query: Any,
    state: FixpointState,
    scope,
    prioritized: bool,
    max_evals: Optional[int],
    relaxations: Optional[Iterable] = None,
) -> FixpointState:
    """Push-based step function for specs with exact edge candidates.

    Scope seeds get one full (pull) evaluation of ``f``; thereafter every
    change is propagated edge-by-edge: a dependent's value is lowered
    directly when the candidate improves it, never re-pulled.  For
    contracting, monotonic specs whose ``f`` is the ``⪯``-minimum of its
    edge candidates this reaches the same fixpoint (Lemma 2) in
    O(1) work per relaxed edge — the schedule Dijkstra and min-label
    propagation actually use.
    """
    order = spec.order
    if order is None:
        raise FixpointError("push propagation requires a contracting spec (an order)")
    counter = state.counter
    counting = not isinstance(counter, NullCounter)
    values = state.values
    value_of = state.get if counting else values.__getitem__
    lt = order.lt

    work = _Worklist(prioritized)
    evals = 0
    # Seeds: one pull evaluation each; changed seeds start the propagation.
    for key in scope:
        if key not in values:
            continue
        evals += 1
        if counting:
            counter.on_scope_push(key)
            counter.on_eval(key)
        new = spec.update(key, value_of, graph, query)
        if new != values[key] and lt(new, values[key]):
            state.set(key, new)
            work.push(key, spec.priority(key, new) if prioritized else None)

    # Seed relaxations: O(1) per inserted edge instead of a full pull of
    # the head's input set (see FixpointSpec.relaxation_pairs).
    if relaxations is not None:
        for cause, dep in relaxations:
            if cause not in values or dep not in values:
                continue
            if counting:
                counter.on_eval(dep)
            candidate = spec.edge_candidate(dep, cause, values[cause], graph, query)
            if lt(candidate, values[dep]):
                state.set(dep, candidate)
                work.push(dep, spec.priority(dep, candidate) if prioritized else None)

    while work:
        key = work.pop()
        if key not in values:
            continue
        evals += 1
        if max_evals is not None and evals > max_evals:
            raise FixpointError(f"fixpoint exceeded {max_evals} evaluations; spec may diverge")
        cause_value = values[key]
        for dep in spec.dependents(key, graph, query):
            if dep not in values:
                continue
            if counting:
                counter.on_eval(dep)
            candidate = spec.edge_candidate(dep, key, cause_value, graph, query)
            if lt(candidate, values[dep]):
                state.set(dep, candidate)
                pushed = work.push(dep, spec.priority(dep, candidate) if prioritized else None)
                if pushed and counting:
                    counter.on_scope_push(dep)
    state.rounds += evals
    return state


def run_batch(
    spec: FixpointSpec, graph: Graph, query: Any, counter=None, engine: str = "auto"
) -> FixpointState:
    """Convenience: a full batch run of ``A`` on ``(Q, G)`` from ``D^⊥``.

    With ``engine="auto"`` (default), uninstrumented runs of
    kernel-declaring specs take the dense CSR path; any live
    :class:`~repro.metrics.counters.AccessCounter` forces the generic
    interpreter (the kernels do not emit per-access events).
    """
    if engine not in _ENGINES:
        raise FixpointError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    instrumented = counter is not None and not isinstance(counter, NullCounter)
    if engine != "generic" and not instrumented:
        from ..kernels.engine import try_run_batch

        state = try_run_batch(spec, graph, query)
        if state is not None:
            if counter is not None:
                state.counter = counter
            return state
        if engine == "kernel":
            from ..kernels.engine import unsupported_reason

            raise FixpointError(
                f"engine='kernel' unavailable: {unsupported_reason(spec, graph, query)}"
            )
    elif engine == "kernel":
        raise FixpointError(
            "engine='kernel' cannot run instrumented (counters require the generic engine)"
        )
    state = new_state(spec, graph, query, counter=counter)
    return run_fixpoint(spec, graph, query, state=state, scope=spec.initial_scope(graph, query))


def estimate_affected(graph: Graph, delta) -> int:
    """Cheap a-priori |AFF| estimate of a batch: anchor degree-sum.

    The affected area of Eq. 3 starts from the updated edges' endpoints
    and can only grow along their adjacency, so the degree-sum of the
    touched nodes (plus |ΔG| itself, for endpoints not yet in ``G``)
    upper-bounds the *first* repair wave.  It deliberately knows nothing
    about cascades — the stream scheduler corrects for those with the
    realized-|AFF| feedback it gets back from each apply.
    """
    est = len(delta)
    for node in delta.touched_nodes():
        if graph.has_node(node):
            est += graph.degree(node)
    return est
