"""The generic initial scope function ``h`` (Figure 4 of the paper).

Given the previous fixpoint ``D^r_A`` and updates ``ΔG``, ``h`` produces

* an initial scope ``H⁰_{A_Δ}`` seeding the resumed step function, and
* a *feasible* status ``D⁰_{A_Δ}`` for ``G ⊕ ΔG`` — every variable lies
  between its new final value and its initial value under ``⪯``.

The implementation follows Figure 4 line by line:

1. Collect into ``H⁰`` the variables whose update-function input sets
   evolved due to ``ΔG`` (``spec.changed_input_keys``).
2. Initialize a priority queue with them, ordered by the topological
   order ``<_C`` induced by anchor sets (``spec.order_key`` — final
   values for deducible specs, timestamps for weakly deducible ones).
3. Pop the smallest variable ``x_i``; build the *feasibilized* input set
   ``Ȳ``: any input later than ``x_i`` in ``<_C`` is reset to its initial
   value ``y^⊥`` (line 6), inputs earlier in the order keep their —
   already repaired — current values.
4. If the old value is strictly below ``f(Ȳ)`` (``x_i ≺ f(Ȳ)``), the old
   value is potentially infeasible: adopt ``f(Ȳ)``, add ``x_i`` to
   ``H⁰``, and enqueue every ``z`` with ``x_i ∈ C_z``
   (``spec.anchor_dependents``, line 9).

Because contributors precede their dependents in ``<_C``, pops are
monotone in the order and each variable needs processing at most once.

The queue-driven repair (steps 2–4) also serves a second consumer: the
boundary-delta absorption of the sharded tier
(:mod:`repro.parallel.boundary`), where the "update" is not ``ΔG`` but an
authoritative owner value raising a replica variable.  :func:`repair_pass`
packages the loop for both callers; the replica case passes the pinned
variables as *trusted* so their externally-imposed values are read as
feasible and never locally re-evaluated.

Boundedness: every repaired variable either changes value on ``G ⊕ ΔG``
or has an evolved input set, so ``H⁰ ⊆ AFF`` (Section 4); this is checked
empirically by :mod:`repro.core.boundedness`.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Hashable, Iterable, Optional, Set

from ..graph.graph import Graph
from ..graph.updates import Batch
from ..metrics.counters import NullCounter
from .spec import FixpointSpec
from .state import FixpointState


def repair_pass(
    spec: FixpointSpec,
    graph_new: Graph,
    query: Any,
    state: FixpointState,
    seeds: Iterable[Hashable],
    h_scope: Set[Hashable],
    trusted: Iterable[Hashable] = (),
    old_values: Optional[Dict[Hashable, Any]] = None,
    old_ts: Optional[Dict[Hashable, int]] = None,
) -> Set[Hashable]:
    """Run the Figure-4 repair queue (lines 2–9) over ``seeds``.

    Repairs ``state`` in place toward a feasible ``D⁰`` and adds every
    repaired variable to ``h_scope`` (mutated in place, also returned).

    ``trusted`` variables are treated as already repaired: their current
    values are read as feasible (line 5's "earlier in the order" branch)
    and they are never popped for re-evaluation themselves — this is how
    boundary absorption pins authoritative owner values.  ``old_values``
    / ``old_ts`` seed the pre-repair overlay the order ``<_C`` is
    computed from; callers that changed values *before* invoking the
    pass (again: boundary pins) record the pre-change values there.
    """
    counter = state.counter
    counting = not isinstance(counter, NullCounter)

    # The order <_C is fixed by the *old* run.  Repairs overwrite values
    # and timestamps in `state`, so keep a lazy overlay of pre-repair
    # values/timestamps for order and anchor computations.
    if old_values is None:
        old_values = {}
    if old_ts is None:
        old_ts = {}
    okey_cache: Dict[Hashable, Any] = {}

    def old_value_of(key: Hashable) -> Any:
        if key in old_values:
            return old_values[key]
        return state.values[key]

    def old_timestamp_of(key: Hashable) -> int:
        if key in old_ts:
            return old_ts[key]
        return state.timestamp(key)

    def okey(key: Hashable) -> Any:
        cached = okey_cache.get(key)
        if cached is None:
            cached = spec.order_key(key, old_value_of(key), old_timestamp_of(key))
            okey_cache[key] = cached
        return cached

    processed: Set[Hashable] = set(trusted)
    tick = 0
    que: list = []
    queued: Set[Hashable] = set()
    for key in seeds:
        if key in processed:
            continue
        tick += 1
        heapq.heappush(que, (okey(key), tick, key))
        queued.add(key)
        if counting:
            counter.on_scope_push(key)

    order = spec.order

    while que:
        x_okey, _, x = heapq.heappop(que)
        if x in processed or x not in state.values:
            continue
        processed.add(x)

        # Lines 4-6: feasibilized evaluation — inputs later in <_C are
        # reset to their initial values.
        def value_of_feasible(y: Hashable, _x_okey=x_okey) -> Any:
            if counting:
                counter.on_read(y)
            if y not in state.values:
                return spec.initial_value(y, graph_new, query)
            if y in processed or y in old_values:
                # Already repaired (or being repaired): current value is
                # feasible for the new graph.
                return state.values[y]
            if okey(y) < _x_okey:
                # Strictly earlier in <_C: feasible by induction on the
                # repair order.
                return state.values[y]
            # Later in <_C — or tied with x_i, in which case y cannot be a
            # contributor of x_i and its old value is untrusted: reset to
            # the initial value (Figure 4, line 6).
            return spec.initial_value(y, graph_new, query)

        if counting:
            counter.on_eval(x)
        new_value = spec.update(x, value_of_feasible, graph_new, query)
        old_value = state.values[x]

        # Line 7: x_i ≺ f(Ȳ) — the stored value may be infeasible.
        infeasible = (
            order.lt(old_value, new_value)
            if order is not None
            else new_value != old_value
        )
        if not infeasible:
            continue

        # Line 8: repair and record.
        old_values.setdefault(x, old_value)
        old_ts.setdefault(x, state.timestamp(x))
        state.set(x, new_value)
        h_scope.add(x)

        # Line 9: enqueue every z whose anchor set contains x.
        for z in spec.anchor_dependents(x, old_value_of, old_timestamp_of, graph_new, query):
            if z in processed or z in queued or z not in state.values:
                continue
            tick += 1
            heapq.heappush(que, (okey(z), tick, z))
            queued.add(z)
            if counting:
                counter.on_scope_push(z)

    return h_scope


def initial_scope(
    spec: FixpointSpec,
    graph_new: Graph,
    query: Any,
    state: FixpointState,
    delta: Batch,
) -> Set[Hashable]:
    """Run ``h``: repair ``state`` to ``D⁰`` in place and return ``H⁰``.

    ``graph_new`` must already be ``G ⊕ ΔG``; ``state`` must hold the
    fixpoint of the batch run on ``G``.
    """
    counter = state.counter
    counting = not isinstance(counter, NullCounter)

    # Vertex updates (Section 4): retire variables of deleted nodes,
    # seed variables of inserted ones at x^⊥.
    for key in spec.removed_variables(delta, graph_new, query):
        state.drop(key)
    fresh_keys = set()
    for key in spec.new_variables(delta, graph_new, query):
        if key not in state.values:
            state.seed(key, spec.initial_value(key, graph_new, query))
            fresh_keys.add(key)

    # Line 1: variables with evolved input sets.
    seeds = {
        key
        for key in spec.changed_input_keys(delta, graph_new, query)
        if key in state.values
    }
    seeds.update(fresh_keys)
    h_scope: Set[Hashable] = set(seeds)

    if not spec.repair_with_scope_function:
        # Dependency-free specs (LCC): the resumed step function recomputes
        # every seed exactly once; a repair pass here would double the work.
        if counting:
            for key in h_scope:
                counter.on_scope_push(key)
        return h_scope

    # Line 2: only variables whose input sets changed in the raising
    # direction of ⪯ can be infeasible; the remaining seeds are handled
    # by the resumed step function.
    repair_seeds = {
        key
        for key in spec.repair_seed_keys(delta, graph_new, query)
        if key in state.values and key not in fresh_keys
    }
    return repair_pass(spec, graph_new, query, state, repair_seeds, h_scope)
