"""Core framework: the fixpoint model and its incrementalization.

This package implements the paper's machinery end to end:

* :mod:`~repro.core.spec` — the fixpoint-algorithm abstraction ``Φ``;
* :mod:`~repro.core.engine` — the generic step-function driver (Eq. 1);
* :mod:`~repro.core.scope` — the initial scope function ``h`` (Figure 4);
* :mod:`~repro.core.incremental` — deduction of ``A_Δ`` (Eqs. 2–3);
* :mod:`~repro.core.orders` — partial orders for contracting/monotonic specs;
* :mod:`~repro.core.boundedness` — AFF computation and C1 verification.
"""

from .boundedness import BoundednessReport, compute_aff, verify_relative_boundedness
from .engine import new_state, run_batch, run_fixpoint
from .incremental import (
    BatchAlgorithm,
    IncrementalAlgorithm,
    IncrementalResult,
    incrementalize,
)
from .orders import BooleanOrder, IntervalOrder, MinValueOrder, PartialOrder
from .scope import initial_scope
from .spec import FixpointSpec
from .state import FixpointState

__all__ = [
    "BatchAlgorithm",
    "BooleanOrder",
    "BoundednessReport",
    "FixpointSpec",
    "FixpointState",
    "IncrementalAlgorithm",
    "IncrementalResult",
    "IntervalOrder",
    "MinValueOrder",
    "PartialOrder",
    "compute_aff",
    "incrementalize",
    "initial_scope",
    "new_state",
    "run_batch",
    "run_fixpoint",
    "verify_relative_boundedness",
]
