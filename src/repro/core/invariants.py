"""Runtime verification of the paper's structural invariants.

Three checkable properties back the framework's guarantees:

* **σ_A holds at the fixpoint** (Section 3): every status variable
  equals its update function applied to the current values.
* **Feasibility** (Section 4): every variable sits between its final and
  initial values under ``⪯`` — the property the scope function ``h``
  must establish and the step function preserves.
* **Contraction** (Eq. 4): replaying a run's writes never moves a
  variable upward in ``⪯``.

These checks are expensive (they evaluate every update function) and are
meant for tests and debugging new specs, not production paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List

from ..graph.graph import Graph
from .spec import FixpointSpec
from .state import FixpointState


@dataclass
class InvariantReport:
    """Outcome of an invariant sweep."""

    holds: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds

    @classmethod
    def from_violations(cls, violations: List[str]) -> "InvariantReport":
        return cls(holds=not violations, violations=violations)


def check_fixpoint_invariant(
    spec: FixpointSpec,
    graph: Graph,
    query: Any,
    state: FixpointState,
    max_report: int = 10,
) -> InvariantReport:
    """Verify ``σ_A``: ``x_i = f_{x_i}(Y_{x_i})`` for every variable.

    >>> from repro.algorithms.sssp import SSSPSpec
    >>> from repro.core import run_batch
    >>> from repro.graph import from_edges
    >>> g = from_edges([(0, 1)], directed=True)
    >>> bool(check_fixpoint_invariant(SSSPSpec(), g, 0, run_batch(SSSPSpec(), g, 0)))
    True
    """
    violations: List[str] = []
    value_of = state.values.__getitem__
    for key in list(state.values):
        expected = spec.update(key, value_of, graph, query)
        actual = state.values[key]
        if expected != actual:
            violations.append(f"σ violated at {key!r}: stored {actual!r}, f gives {expected!r}")
            if len(violations) >= max_report:
                break
    return InvariantReport.from_violations(violations)


def check_feasibility(
    spec: FixpointSpec,
    graph: Graph,
    query: Any,
    state: FixpointState,
    final_values: Dict[Hashable, Any],
    max_report: int = 10,
) -> InvariantReport:
    """Verify ``x* ⪯ x ⪯ x^⊥`` for every variable of ``state``.

    ``final_values`` is the true fixpoint on the (current) graph —
    typically obtained from a fresh batch run.
    """
    order = spec.order
    if order is None:
        return InvariantReport(holds=True)
    violations: List[str] = []
    for key, value in state.values.items():
        top = spec.initial_value(key, graph, query)
        bottom = final_values.get(key)
        if not order.leq(value, top):
            violations.append(f"{key!r}: value {value!r} above initial {top!r}")
        elif bottom is not None and not order.leq(bottom, value):
            violations.append(f"{key!r}: value {value!r} below final {bottom!r} (infeasible)")
        if len(violations) >= max_report:
            break
    return InvariantReport.from_violations(violations)


def check_scope_validity(
    spec: FixpointSpec,
    graph: Graph,
    query: Any,
    state: FixpointState,
    scope,
    max_report: int = 10,
) -> InvariantReport:
    """Verify the scope is *valid* w.r.t. the status (Section 4).

    Every variable whose statement ``σ_{x_i}`` is violated — i.e. whose
    stored value differs from ``f`` in the lowering direction — must be
    in the scope, or the resumed step function would never visit it.
    """
    order = spec.order
    scope = set(scope)
    violations: List[str] = []
    value_of = state.values.__getitem__
    for key in list(state.values):
        expected = spec.update(key, value_of, graph, query)
        actual = state.values[key]
        if expected == actual:
            continue
        lowering = order is None or order.lt(expected, actual)
        if lowering and key not in scope:
            violations.append(f"{key!r} violates σ (f={expected!r}, x={actual!r}) but is outside H")
            if len(violations) >= max_report:
                break
    return InvariantReport.from_violations(violations)
