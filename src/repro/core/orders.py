"""Partial orders on status-variable domains.

Section 4 of the paper defines *contracting* and *monotonic* fixpoint
algorithms with respect to a partial order ``⪯`` on the domain of status
variables: the computation moves strictly downward,

    ``D* ⪯ … ⪯ D^{t+1} ⪯ D^t ⪯ … ⪯ D^0 = D^⊥``,

with the initial value at the top and the fixpoint at the bottom.  A
status variable is *feasible* when it lies between its final and initial
values.

This module provides the three orders used by the paper's proofs of
concept:

* :class:`MinValueOrder` — numeric ``≤`` (SSSP distances, CC component
  ids; values only shrink),
* :class:`BooleanOrder` — ``false ⪯ true`` (graph simulation; matches are
  only retracted), and
* :class:`IntervalOrder` — ``[a, b] ⪯ [c, d]`` iff ``b ≤ c`` (DFS
  intervals; a node's interval only moves earlier in the traversal).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Tuple


class PartialOrder(ABC):
    """A partial order ``⪯`` on status-variable values."""

    @abstractmethod
    def leq(self, a: Any, b: Any) -> bool:
        """Whether ``a ⪯ b``."""

    def lt(self, a: Any, b: Any) -> bool:
        """Strict order: ``a ≺ b``."""
        return a != b and self.leq(a, b)

    def comparable(self, a: Any, b: Any) -> bool:
        return self.leq(a, b) or self.leq(b, a)


class MinValueOrder(PartialOrder):
    """Numeric ``≤``; used when update functions are minimizations.

    SSSP distances start at ``∞`` and contract downward; CC component ids
    start at the node's own id and contract to the component minimum.

    >>> MinValueOrder().lt(3, float('inf'))
    True
    """

    def leq(self, a: Any, b: Any) -> bool:
        return a <= b


class BooleanOrder(PartialOrder):
    """``false ⪯ true``; graph simulation retracts matches monotonically.

    >>> BooleanOrder().lt(False, True)
    True
    >>> BooleanOrder().leq(True, False)
    False
    """

    def leq(self, a: Any, b: Any) -> bool:
        return (not a) or bool(b)


class IntervalOrder(PartialOrder):
    """The DFS interval order of Section 5.2.

    Status variables are closed intervals ``[first, last]``; the paper
    defines ``x_v ⪯ x_u`` iff ``v.last ≤ u.first`` — that is, ``v``'s whole
    traversal window finishes no later than ``u``'s begins.  The initial
    value ``[∞, ∞]`` is above every concrete interval, and DFS assignment
    moves intervals strictly earlier, so DFS_fp is contracting under this
    order.

    Equal intervals are also considered ``⪯`` (reflexivity), which the
    abstract definition needs even though ``last ≤ first`` fails for
    non-degenerate intervals.

    >>> order = IntervalOrder()
    >>> order.lt((0, 3), (4, 9))
    True
    >>> inf = float('inf')
    >>> order.lt((4, 9), (inf, inf))
    True
    """

    def leq(self, a: Tuple[float, float], b: Tuple[float, float]) -> bool:
        if a == b:
            return True
        return a[1] <= b[0]
