"""Relative boundedness: AFF computation and empirical verification.

Section 2 of the paper defines ``AFF`` as the difference in the data
inspected by the batch algorithm ``A`` between its runs on ``G`` and on
``G ⊕ ΔG``; an incremental algorithm is *bounded relative to* ``A`` when
the data it checks is a function of ``|Q|``, ``|ΔG|``, and ``|AFF|``.

The proof sketch of Theorem 3 gives the concrete characterization this
module implements: ``AFF`` contains a status variable ``x_i`` exactly
when

(i) its value differs between the two fixpoints, or
(ii) its update-function input set ``Y_{x_i}`` evolved due to ``ΔG``.

:func:`compute_aff` evaluates this by running the batch algorithm on both
graphs; :func:`verify_relative_boundedness` then replays the incremental
algorithm with tracing and checks ``H⁰ ⊆ AFF`` plus the access-count
ratio — the empirical evidence reported in the paper's Exp-1(c).

One nuance for *weakly deducible* algorithms (CC, Sim): the paper's AFF
is the difference in the data **inspected** by the two batch runs,
*including auxiliary structures* — and the re-run's propagation order
(hence its timestamps) changes around every update even where final
values do not.  The value-based characterization above under-approximates
that, so for timestamp-ordered specs the verifier accepts ``H⁰`` entries
outside the value-AFF as long as they lie on anchor-cascade chains rooted
in it (their timestamps are exactly the inspected-data difference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Set

from ..graph.graph import Graph
from ..graph.updates import Batch, updated_copy
from .engine import run_batch
from .incremental import IncrementalAlgorithm
from .spec import FixpointSpec


def compute_aff(spec: FixpointSpec, graph_old: Graph, delta: Batch, query: Any = None) -> Set[Hashable]:
    """``AFF`` for ``(A, Q, G, ΔG)`` by differencing two batch fixpoints."""
    graph_new = updated_copy(graph_old, delta)
    state_old = run_batch(spec, graph_old, query)
    state_new = run_batch(spec, graph_new, query)

    aff: Set[Hashable] = set()
    # (i) value differs (includes variables created or retired by ΔG).
    keys = set(state_old.values) | set(state_new.values)
    for key in keys:
        if state_old.values.get(key) != state_new.values.get(key):
            aff.add(key)
    # (ii) input set evolved.
    aff.update(spec.changed_input_keys(delta, graph_new, query))
    return aff


@dataclass
class BoundednessReport:
    """Empirical relative-boundedness evidence for one ``(G, ΔG)`` pair.

    Attributes
    ----------
    aff_size:
        ``|AFF|`` — the inherent update cost.
    scope_size:
        ``|H⁰|`` produced by the scope function ``h``.
    scope_bounded:
        Whether ``H⁰ ⊆ AFF`` held (the boundedness condition C1).
    visited_outside_aff:
        Variables the incremental run touched that are outside
        ``AFF ∪ ΔG-seeds`` — sanity-reported; writes outside AFF indicate
        a bug, reads just outside it are allowed by the definition
        (boundedness is a *function of* |AFF|, not containment of reads).
    accesses:
        Total data accesses of the incremental run.
    total_variables:
        ``|Ψ_A|`` on the updated graph, for the paper's AFF-share metric.
    """

    aff_size: int
    scope_size: int
    scope_bounded: bool
    visited_outside_aff: int
    accesses: int
    total_variables: int

    @property
    def aff_share(self) -> float:
        """``|AFF| / |Ψ|`` — the percentage reported in Exp-1(c)."""
        return self.aff_size / self.total_variables if self.total_variables else 0.0

    def __repr__(self) -> str:
        return (
            f"BoundednessReport(|AFF|={self.aff_size}, |H⁰|={self.scope_size}, "
            f"H⁰⊆AFF={self.scope_bounded}, accesses={self.accesses})"
        )


def verify_relative_boundedness(
    spec: FixpointSpec,
    graph: Graph,
    delta: Batch,
    query: Any = None,
) -> BoundednessReport:
    """Check ``H⁰ ⊆ AFF`` and collect access statistics.

    Runs the batch algorithm on ``G``, computes ``AFF``, then applies the
    deduced incremental algorithm with tracing.  ``graph`` is left
    untouched (a copy is updated).
    """
    aff = compute_aff(spec, graph, delta, query)

    work_graph = graph.copy()
    state = run_batch(spec, work_graph, query)
    inc = IncrementalAlgorithm(spec)
    result = inc.apply(work_graph, state, delta, query, trace=True)

    touched: Set[Hashable] = set()
    if result.h_counter.traced:
        touched.update(result.h_counter.traced)
    if result.engine_counter.traced:
        touched.update(result.engine_counter.traced)

    scope_bounded = result.scope <= aff
    if not scope_bounded and spec.uses_timestamps:
        # Timestamp-ordered repair may conservatively walk anchor chains
        # whose values end unchanged; accept entries reachable from the
        # value-AFF along dependency edges within the scope (see module
        # docstring).
        reached = set(result.scope & aff)
        frontier = list(reached)
        while frontier:
            x = frontier.pop()
            for dep in spec.dependents(x, work_graph, query):
                if dep in result.scope and dep not in reached:
                    reached.add(dep)
                    frontier.append(dep)
        scope_bounded = result.scope <= reached

    return BoundednessReport(
        aff_size=len(aff),
        scope_size=len(result.scope),
        scope_bounded=scope_bounded,
        visited_outside_aff=len(touched - aff),
        accesses=result.total_accesses,
        total_variables=len(state.values),
    )
