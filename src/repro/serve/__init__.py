"""Concurrent incremental query serving.

This package turns a :class:`~repro.session.DynamicGraphSession` into a
**serving tier**: many concurrent clients read the answers of standing
incremental queries and stream graph updates, while exactly one writer
thread owns the session.  The pieces:

* :mod:`~repro.serve.state` — immutable :class:`AnswerSnapshot`\\ s and
  the copy-on-write :class:`SnapshotStore` (single-writer /
  multi-reader snapshot isolation, version-gated long-polls);
* :mod:`~repro.serve.service` — :class:`QueryService`: the writer
  thread, the bounded admission queue, per-request deadlines, typed
  load shedding (:class:`~repro.errors.Overloaded`,
  :class:`~repro.errors.Deadline`) and graceful drain on close;
* :mod:`~repro.serve.protocol` / :mod:`~repro.serve.server` /
  :mod:`~repro.serve.client` — a JSON-lines TCP surface
  (:class:`QueryServer`, :class:`ServiceClient`) reusing the WAL's
  update encoding, exposed as the ``repro serve`` CLI command;
* :mod:`~repro.serve.loadgen` — open/closed-loop load generation with
  Zipf query popularity plus :func:`verify_isolation`, the differential
  checker that batch-recomputes every served read at its reported WAL
  sequence number.

The isolation contract, in one line: a read of query ``q`` returns
``(answer, seq)`` such that ``answer`` equals a from-scratch batch run
of ``q`` on the initial graph with exactly the update batches
``0..seq`` applied — never a torn intermediate.  ``docs/serving.md``
documents the protocol and the overload/degradation matrix.
"""

from .client import RemoteError, ServiceClient
from .loadgen import LoadReport, run_load, verify_isolation
from .protocol import PROTOCOL_VERSION, handle_request, jsonable
from .server import QueryServer, serve_forever
from .service import QueryService, ServiceConfig
from .state import AnswerSnapshot, SnapshotStore

__all__ = [
    "AnswerSnapshot",
    "LoadReport",
    "PROTOCOL_VERSION",
    "QueryServer",
    "QueryService",
    "RemoteError",
    "ServiceClient",
    "ServiceConfig",
    "SnapshotStore",
    "handle_request",
    "jsonable",
    "run_load",
    "serve_forever",
    "verify_isolation",
]
