"""The concurrent query service: admission control + the writer thread.

:class:`QueryService` wraps one :class:`~repro.session.DynamicGraphSession`
with the serving discipline a standing-query deployment needs:

* **single writer** — all mutations (updates, registrations) flow
  through one bounded queue drained by one writer thread, so the
  session below never needs internal locking and each window commits
  through the stream scheduler
  (:meth:`~repro.session.DynamicGraphSession.update_stream`) exactly as
  a sequential caller would;
* **snapshot-isolated readers** — after every committed window the
  writer publishes immutable per-query answer snapshots tagged with the
  WAL sequence number (:mod:`repro.serve.state`); reads are served from
  those and never block on writes;
* **admission control** — the write queue is bounded
  (:class:`~repro.errors.Overloaded` on a full queue, the request is
  *not* enqueued), and every request may carry a deadline
  (:class:`~repro.errors.Deadline`; expired ops are shed at dequeue
  without being applied);
* **graceful drain** — :meth:`close` stops admission, lets the writer
  drain the queued tail, publishes the final snapshots, and checkpoints
  durable sessions through the resilience layer.

Failure containment follows the session's own degradation ladder: a
window that fails wholesale (one poisoned batch rolls back the
transactional stream) is retried op by op, so healthy batches commit and
only the offending op's submitter sees the typed error.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Dict, List, Optional, Union

from ..errors import Deadline, Overloaded, ReproError, ServiceClosed
from ..graph.updates import Batch, Update
from ..metrics.latency import DepthGauge, LatencyRecorder
from ..resilience.sanitizer import claim_owner, release_owner
from ..session import DynamicGraphSession
from .state import AnswerSnapshot, SnapshotStore


@dataclass
class ServiceConfig:
    """Tunable serving behaviour; see ``docs/serving.md`` for the matrix."""

    #: Write-queue capacity: admission sheds (``Overloaded``) beyond it.
    queue_size: int = 256
    #: Max queued ops drained into one committed window.
    write_window: int = 32
    #: Deadline applied to writes that carry none (``None`` = unbounded).
    default_deadline: Optional[float] = None
    #: Bound on the shutdown drain; ops still queued past it are shed.
    drain_timeout: float = 30.0


class _Op:
    """One queued mutation: an update batch or a (un)registration."""

    __slots__ = (
        "kind", "batch", "name", "algorithm", "query", "listener",
        "deadline", "enqueued", "done", "seq", "error", "cancelled",
    )

    def __init__(self, kind: str, deadline: Optional[float]) -> None:
        self.kind = kind
        self.batch: Optional[Batch] = None
        self.name = self.algorithm = ""
        self.query: Any = None
        self.listener = None
        self.deadline = deadline
        self.enqueued = monotonic()
        self.done = threading.Event()
        self.seq: Optional[int] = None
        self.error: Optional[BaseException] = None
        self.cancelled = False

    @property
    def expired(self) -> bool:
        return self.deadline is not None and monotonic() > self.deadline


class QueryService:
    """Snapshot-isolated serving front for one dynamic-graph session.

    The service owns the session: once :meth:`start` has run, never call
    the session's mutating APIs directly — submit through
    :meth:`update` / :meth:`register` instead.  Reads (:meth:`read`,
    :meth:`watch`, :meth:`stats`) are safe from any number of threads.
    """

    def __init__(
        self,
        session: DynamicGraphSession,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.session = session
        self.config = config or ServiceConfig()
        self.store = SnapshotStore()
        self._queue: "queue.Queue[_Op]" = queue.Queue(self.config.queue_size)
        self._writer: Optional[threading.Thread] = None
        self._closing = threading.Event()
        self._closed = threading.Event()
        self._started = monotonic()

        # Windowed counters, guarded by one small lock (never held while
        # applying): reset on stats(reset_window=True).
        self._stats_lock = threading.Lock()
        self._depth = DepthGauge()
        self.read_latency = LatencyRecorder()
        self.write_latency = LatencyRecorder()
        self._counters = self._zero_counters()
        self._lifetime = self._zero_counters()

        # Queries registered before start() get their initial snapshots.
        self._publish()

    @staticmethod
    def _zero_counters() -> Dict[str, int]:
        return {
            "ops": 0,            # update ops committed
            "windows": 0,        # writer cycles that committed something
            "applies": 0,        # coalesced applies across all queries
            "kernel_applies": 0,
            "generic_applies": 0,
            "touched": 0,        # realized |AFF| across queries/applies
            "writes": 0,         # kernel value writes
            "shed_overloaded": 0,
            "shed_deadline": 0,
            "rejected": 0,       # typed per-op failures (validation, ...)
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        if self._writer is not None:
            raise ReproError("service already started")
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-serve-writer", daemon=True
        )
        self._writer.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop admission, drain (or shed) the queue, checkpoint, stop.

        With ``drain=True`` the writer finishes every already-admitted
        op (bounded by ``config.drain_timeout``); with ``drain=False``
        queued ops are shed with :class:`~repro.errors.ServiceClosed`.
        """
        if self._closed.is_set():
            return
        if not drain:
            self._shed_queue(ServiceClosed("service closed before this op was applied"))
        self._closing.set()
        writer = self._writer
        if writer is not None:
            writer.join(self.config.drain_timeout)
            if writer.is_alive():  # drain overran its bound: shed the rest
                self._shed_queue(ServiceClosed("shutdown drain timed out"))
                writer.join(self.config.drain_timeout)
        # An op that raced past the closing check after the writer exited
        # would otherwise block its submitter forever.
        self._shed_queue(ServiceClosed("service closed before this op was applied"))
        try:
            self.session.close()  # checkpoint + release WAL when durable
        finally:
            self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def _shed_queue(self, error: ReproError) -> None:
        while True:
            try:
                op = self._queue.get_nowait()
            except queue.Empty:
                return
            op.error = error
            op.done.set()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self, op: _Op) -> _Op:
        if self._closing.is_set() or self._closed.is_set():
            raise ServiceClosed("service is shutting down; op rejected")
        try:
            self._queue.put_nowait(op)
        except queue.Full:
            with self._stats_lock:
                self._counters["shed_overloaded"] += 1
                self._lifetime["shed_overloaded"] += 1
            raise Overloaded(
                f"write queue full ({self.config.queue_size} ops pending)",
                depth=self.config.queue_size,
            ) from None
        self._depth.set(self._queue.qsize())
        return op

    def _await(self, op: _Op, label: str) -> _Op:
        """Block the submitter until the op resolves (or its deadline)."""
        if op.deadline is None:
            op.done.wait()
        else:
            # Small grace past the deadline: the writer sheds expired ops
            # itself, so this timeout only fires if the op is mid-apply.
            if not op.done.wait(max(0.0, op.deadline - monotonic()) + 0.05):
                op.cancelled = True
                with self._stats_lock:
                    self._counters["shed_deadline"] += 1
                    self._lifetime["shed_deadline"] += 1
                raise Deadline(
                    f"{label} not applied within its deadline; "
                    "it may still commit — check a later read's seq"
                )
        if op.error is not None:
            raise op.error
        return op

    def _deadline(self, deadline: Optional[float]) -> Optional[float]:
        """Relative seconds → absolute monotonic deadline."""
        if deadline is None:
            deadline = self.config.default_deadline
        return None if deadline is None else monotonic() + deadline

    # ------------------------------------------------------------------
    # Write path (public)
    # ------------------------------------------------------------------
    def update(
        self,
        updates: Union[Batch, List[Update], Update],
        deadline: Optional[float] = None,
    ) -> int:
        """Submit ``ΔG``; block until committed; return its sequence number.

        Raises :class:`~repro.errors.Overloaded` (not enqueued),
        :class:`~repro.errors.Deadline` (shed or still in flight), a
        :class:`~repro.errors.BatchValidationError` subclass (rejected by
        validation — nothing applied), or
        :class:`~repro.errors.ServiceClosed`.
        """
        if not isinstance(updates, Batch):
            if isinstance(updates, (list, tuple)):
                updates = Batch(list(updates))
            else:
                updates = Batch([updates])
        started = monotonic()
        op = _Op("update", self._deadline(deadline))
        op.batch = updates
        self._admit(op)
        self._await(op, f"update of {len(updates)} op(s)")
        self.write_latency.record(monotonic() - started)
        assert op.seq is not None
        return op.seq

    def register(
        self,
        name: str,
        algorithm: str,
        query: Any = None,
        listener=None,
        deadline: Optional[float] = None,
    ) -> AnswerSnapshot:
        """Register a standing query (runs its batch algorithm once) and
        return its initial published snapshot."""
        if self._writer is None:
            # Not serving yet: register synchronously, snapshot directly.
            # lint: allow(T001): pre-start path — the writer thread does
            # not exist yet, so the caller is the only thread alive here
            self.session.register(name, algorithm, query=query, listener=listener)
            self._publish()
            return self.store.get(name)
        op = _Op("register", self._deadline(deadline))
        op.name, op.algorithm, op.query, op.listener = name, algorithm, query, listener
        self._admit(op)
        self._await(op, f"registration of {name!r}")
        return self.store.get(name)

    def unregister(self, name: str, deadline: Optional[float] = None) -> None:
        if self._writer is None:
            # lint: allow(T001): pre-start path — no writer thread yet
            self.session.unregister(name)
            self._publish()
            return
        op = _Op("unregister", self._deadline(deadline))
        op.name = name
        self._admit(op)
        self._await(op, f"unregistration of {name!r}")

    # ------------------------------------------------------------------
    # Read path (public; never touches the session)
    # ------------------------------------------------------------------
    def read(self, name: str) -> AnswerSnapshot:
        """The current published snapshot of one query; never blocks on
        writes.  The snapshot's ``seq`` names the exact fixpoint version
        the answer corresponds to."""
        started = monotonic()
        snapshot = self.store.get(name)
        self.read_latency.record(monotonic() - started)
        return snapshot

    def watch(
        self, name: str, after_version: int = -1, timeout: Optional[float] = None
    ) -> AnswerSnapshot:
        """Long-poll until ``name`` publishes a version > ``after_version``.

        Raises :class:`~repro.errors.Deadline` when ``timeout`` elapses
        first — the long-poll idiom: re-issue with the same version.
        """
        snapshot = self.store.wait_for(name, after_version, timeout)
        if snapshot is None:
            raise Deadline(
                f"no version of {name!r} newer than {after_version} within {timeout}s"
            )
        return snapshot

    def stats(self, reset_window: bool = True) -> Dict[str, Any]:
        """Service health: queue, shed counts, latency, per-window kernel
        counters, and each query's published version/seq.

        ``reset_window=True`` (the default — scrape-and-reset) zeroes the
        windowed counters so successive scrapes report per-window, not
        cumulative-forever, numbers; lifetime totals stay under
        ``"lifetime"``.
        """
        with self._stats_lock:
            window = dict(self._counters)
            lifetime = dict(self._lifetime)
            if reset_window:
                self._counters = self._zero_counters()
        report = {
            "uptime": monotonic() - self._started,
            "seq": self.session.seq,
            "closing": self._closing.is_set(),
            "queue": {
                "capacity": self.config.queue_size,
                **self._depth.snapshot(reset=reset_window),
            },
            "window": window,
            "lifetime": lifetime,
            "latency": {
                "read": self.read_latency.snapshot(reset=reset_window),
                "write": self.write_latency.snapshot(reset=reset_window),
            },
            "queries": self.store.as_dict(),
            "incidents": len(self.session.incidents),
        }
        # The sharded tier's scatter/reset telemetry, when the session is
        # a router (single-writer sessions have no exchange protocol).
        protocol = getattr(self.session, "protocol_stats", None)
        if protocol is not None:
            report["protocol"] = protocol.snapshot(reset=reset_window)
        return report

    # ------------------------------------------------------------------
    # Writer thread
    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        # Under REPRO_TSAN the writer thread claims the session: any
        # other thread mutating it while we run is a reported race.
        claim_owner(self.session, role="serve-writer")
        try:
            while True:
                try:
                    first = self._queue.get(timeout=0.05)
                except queue.Empty:
                    if self._closing.is_set():
                        break
                    continue
                window: List[_Op] = [first]
                while len(window) < self.config.write_window:
                    try:
                        window.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
                self._depth.set(self._queue.qsize())
                self._run_window(window)
            # Final snapshots reflect the fully-drained state.
            self._publish()
        finally:
            release_owner(self.session)

    def _run_window(self, window: List[_Op]) -> None:
        """Commit one admitted window: shed expired ops, group runs of
        update ops into one scheduled stream, run control ops in order."""
        index = 0
        committed = False
        while index < len(window):
            op = window[index]
            if op.cancelled or op.expired:
                op.error = Deadline("deadline expired while queued; op shed un-applied")
                with self._stats_lock:
                    self._counters["shed_deadline"] += 1
                    self._lifetime["shed_deadline"] += 1
                op.done.set()
                index += 1
                continue
            if op.kind == "update":
                run = [op]
                scan = index + 1
                while scan < len(window) and window[scan].kind == "update":
                    nxt = window[scan]
                    if nxt.cancelled or nxt.expired:
                        break
                    run.append(nxt)
                    scan += 1
                committed |= self._apply_run(run)
                index += len(run)
            else:
                committed |= self._apply_control(op)
                index += 1
        if committed:
            self._publish()
        # Resolve only after publication: a submitter that saw its op
        # acknowledged is guaranteed to read a snapshot at seq >= its own
        # (read-your-writes across the snapshot store).
        for op in window:
            op.done.set()

    def _apply_run(self, run: List[_Op]) -> bool:
        """Apply a run of update ops as one scheduled stream; on failure,
        isolate per op so healthy batches still commit."""
        base = self.session.seq
        try:
            results = self.session.update_stream(
                [op.batch for op in run], notify=True
            )
        except Exception:
            return self._apply_individually(run)
        # update_stream logged one seq per batch, in order.
        for offset, op in enumerate(run):
            op.seq = base + 1 + offset
        self._absorb_stream_stats(results, ops=len(run))
        return True

    def _apply_individually(self, run: List[_Op]) -> bool:
        committed = False
        for op in run:
            try:
                results = self.session.update(op.batch)
            except Exception as exc:
                op.error = exc
                with self._stats_lock:
                    self._counters["rejected"] += 1
                    self._lifetime["rejected"] += 1
                continue
            op.seq = self.session.seq
            committed = True
            self._absorb_apply_stats(results)
        return committed

    def _apply_control(self, op: _Op) -> bool:
        try:
            if op.kind == "register":
                self.session.register(
                    op.name, op.algorithm, query=op.query, listener=op.listener
                )
            elif op.kind == "unregister":
                self.session.unregister(op.name)
            else:  # pragma: no cover - unknown kinds never admitted
                raise ReproError(f"unknown op kind {op.kind!r}")
        except Exception as exc:
            op.error = exc
            with self._stats_lock:
                self._counters["rejected"] += 1
                self._lifetime["rejected"] += 1
            return False
        return True

    # ------------------------------------------------------------------
    def _absorb_stream_stats(self, results: Dict[str, Any], ops: int) -> None:
        totals = {"applies": 0, "kernel_applies": 0, "generic_applies": 0,
                  "touched": 0, "writes": 0}
        for result in results.values():
            if hasattr(result, "kernel_totals"):
                kt = result.kernel_totals()
                for key in totals:
                    totals[key] += kt.get(key, 0)
            elif hasattr(result, "affected_size"):  # plain IncrementalResult
                totals["applies"] += 1
                totals["generic_applies"] += 1
                totals["touched"] += result.affected_size
        with self._stats_lock:
            for counters in (self._counters, self._lifetime):
                counters["ops"] += ops
                counters["windows"] += 1
                for key, value in totals.items():
                    counters[key] += value

    def _absorb_apply_stats(self, results: Dict[str, Any]) -> None:
        touched = writes = kernel = generic = 0
        for result in results.values():
            touched += result.affected_size
            stats = getattr(result, "kernel_stats", None)
            if stats:
                kernel += 1
                writes += stats.get("writes", 0)
            else:
                generic += 1
        with self._stats_lock:
            for counters in (self._counters, self._lifetime):
                counters["ops"] += 1
                counters["windows"] += 1
                counters["applies"] += kernel + generic
                counters["kernel_applies"] += kernel
                counters["generic_applies"] += generic
                counters["touched"] += touched
                counters["writes"] += writes

    def _publish(self) -> None:
        session = self.session
        answers: Dict[str, Any] = {}
        algorithms: Dict[str, str] = {}
        for name in session.queries():
            try:
                answers[name] = session.answer(name)
            except Exception:  # a torn query: keep serving the others
                continue
            registered = session._queries.get(name)
            algorithms[name] = registered.algorithm if registered is not None else ""
        self.store.publish(answers, seq=session.seq, algorithms=algorithms)

    def __repr__(self) -> str:
        return (
            f"QueryService(queries={self.store.names()}, seq={self.session.seq}, "
            f"depth={self._queue.qsize()}/{self.config.queue_size})"
        )
