"""A blocking JSON-lines client for the query service.

:class:`ServiceClient` is a thin, dependency-free socket wrapper used by
the load generator, the tests, and anyone scripting against ``repro
serve``.  It re-raises the server's typed errors
(:class:`~repro.errors.Overloaded`, :class:`~repro.errors.Deadline`,
validation errors, ...) as local exceptions of the matching class where
one exists, so callers handle overload the same way in-process and over
the wire.

One client = one connection = one outstanding request at a time; use a
client per thread (they are cheap) for concurrent load.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .. import errors as _errors
from ..errors import Deadline, Overloaded, ReproError, ServeError, ServiceClosed
from ..graph.updates import Batch, Update
from ..resilience.wal import encode_update
from .protocol import encode_query

#: Server-side error type name → local exception class.
_ERROR_TYPES: Dict[str, type] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, _errors.ReproError)
}


class RemoteError(ReproError):
    """A server-side error with no matching local class."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


def _raise_remote(error: Dict[str, Any]) -> None:
    kind = str(error.get("type", "ReproError"))
    message = str(error.get("message", ""))
    cls = _ERROR_TYPES.get(kind)
    if cls is Overloaded:
        raise Overloaded(message)
    if cls is not None:
        try:
            raise cls(message)
        except TypeError:  # classes with non-message constructors
            raise RemoteError(kind, message) from None
    raise RemoteError(kind, message)


class ServiceClient:
    """Talk to a :class:`~repro.serve.server.QueryServer` over TCP."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        payload = json.dumps(request).encode("utf-8") + b"\n"
        self._file.write(payload)
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceClosed("server closed the connection")
        response = json.loads(line)
        if not response.get("ok", False):
            _raise_remote(response.get("error", {}))
        return response

    # ------------------------------------------------------------------
    def ping(self) -> int:
        """Round-trip; returns the server's protocol version."""
        return int(self._call({"op": "ping"})["protocol"])

    def register(
        self,
        name: str,
        algorithm: str,
        query: Any = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {
            "op": "register",
            "name": name,
            "algorithm": algorithm,
            "query": encode_query(query),
        }
        if deadline is not None:
            request["deadline"] = deadline
        return self._call(request)

    def query(self, name: str) -> Dict[str, Any]:
        """The current snapshot: ``{name, seq, version, answer, ...}``.

        ``answer`` is the JSON rendering (string keys, ``"inf"`` for
        infinities) of the published defensive copy.
        """
        return self._call({"op": "query", "name": name})

    def update(
        self,
        updates: Iterable[Update],
        deadline: Optional[float] = None,
    ) -> int:
        """Submit ``ΔG``; returns the committed WAL sequence number."""
        ops: List[Dict[str, Any]] = [
            encode_update(u)
            for u in (updates.updates if isinstance(updates, Batch) else list(updates))
        ]
        request: Dict[str, Any] = {"op": "update", "ops": ops}
        if deadline is not None:
            request["deadline"] = deadline
        return int(self._call(request)["seq"])

    def watch(
        self, name: str, after_version: int = -1, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Long-poll for a version newer than ``after_version``.

        Raises :class:`~repro.errors.Deadline` when the server's timeout
        elapsed without a newer version — re-issue to keep watching.
        """
        request: Dict[str, Any] = {"op": "watch", "name": name, "after_version": after_version}
        if timeout is not None:
            request["timeout"] = timeout
        return self._call(request)

    def unregister(self, name: str) -> None:
        self._call({"op": "unregister", "name": name})

    def stats(self, reset: bool = False) -> Dict[str, Any]:
        """Service stats; ``reset=True`` rolls the server's window."""
        return self._call({"op": "stats", "reset": reset})["stats"]

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
