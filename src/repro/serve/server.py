"""A small threaded TCP front for :class:`~repro.serve.service.QueryService`.

One thread per connection, JSON-lines framing
(:mod:`repro.serve.protocol`).  This is deliberately the simplest
possible network surface that exercises the serving layer's real
guarantees — snapshot-isolated reads, admission control, long-polls —
under genuinely concurrent clients; it is not trying to be an
asyncio-grade event loop.  Long-poll ``watch`` requests block their
connection thread only (never the writer), and a connection error tears
down exactly that connection.

Usage::

    service = QueryService(session).start()
    server = QueryServer(service, port=0)       # 0 = ephemeral
    server.start()
    ... ServiceClient(*server.address) ...
    server.stop(); service.close()

The ``repro serve`` CLI entrypoint (``repro.cli``) wraps exactly this.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Optional, Tuple

from .protocol import handle_line
from .service import QueryService


class _Handler(socketserver.StreamRequestHandler):
    # Line-buffered reads; flush every response immediately.
    rbufsize = -1
    wbufsize = 0

    def handle(self) -> None:
        service: QueryService = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline()
            except (ConnectionError, OSError):
                return
            if not line:
                return  # client closed
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            response = handle_line(service, text)
            try:
                self.wfile.write(response.encode("utf-8") + b"\n")
            except (ConnectionError, OSError):
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Long-poll handlers linger; don't let shutdown() wait on them.
    block_on_close = False


class QueryServer:
    """Serve a :class:`QueryService` over TCP on ``host:port``.

    ``port=0`` binds an ephemeral port; read the real one from
    :attr:`address` (the pattern the CI smoke step and the tests use).
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self._server = _TCPServer((host, port), _Handler)
        self._server.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolved even for ``port=0``."""
        return self._server.server_address[:2]

    def start(self) -> "QueryServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and close the listening socket (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        host, port = self.address
        return f"QueryServer({host}:{port}, {self.service!r})"


def serve_forever(service: QueryService, host: str, port: int) -> None:
    """Blocking foreground serve (the CLI path); Ctrl-C stops cleanly."""
    server = QueryServer(service, host=host, port=port)
    bound_host, bound_port = server.address
    print(f"serving on {bound_host}:{bound_port} "
          f"(queries: {', '.join(service.store.names()) or 'none'})",
          flush=True)
    server.start()
    try:
        while True:
            threading.Event().wait(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        service.close()
