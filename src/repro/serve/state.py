"""Single-writer / multi-reader snapshot isolation for answer serving.

The serving layer's isolation model is deliberately simple, because the
session underneath makes it possible:

* exactly **one** writer thread ever touches the
  :class:`~repro.session.DynamicGraphSession` (graph replicas, fixpoint
  states, WAL) — there is nothing to lock *inside* the session;
* after every committed window the writer extracts each standing query's
  answer (already a defensive copy, see
  :meth:`DynamicGraphSession.answer <repro.session.DynamicGraphSession.answer>`)
  and publishes it here as an immutable :class:`AnswerSnapshot` tagged
  with the WAL sequence number the answer is consistent with;
* readers only ever see published snapshots.  A read never blocks on a
  write, never observes a mid-apply state, and always reports the exact
  fixpoint version (``seq``) its answer corresponds to — the
  prefix-consistency the differential isolation test verifies by batch
  recomputation at that very ``seq``.

Publication is copy-on-write: the name → snapshot map is *replaced*, not
mutated, so a reader that grabbed the previous map keeps a consistent
view for free (reference assignment is atomic under the GIL).  A
condition variable backs ``watch``-style long-polls: readers sleep until
a query's version advances past the one they have seen.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from ..resilience.sanitizer import publish_region


@dataclass(frozen=True)
class AnswerSnapshot:
    """One immutable published answer of one standing query.

    Attributes
    ----------
    name / algorithm:
        The query's registration name and its algorithm-pair name.
    seq:
        The WAL sequence number this answer is consistent with: the
        answer equals a from-scratch batch run on the graph after
        exactly the batches ``0..seq`` (-1 = the registration graph).
    version:
        Per-query change counter: bumps only when the answer *differs*
        from the previously published one, so ``watch`` long-polls wake
        on real changes, not on every committed window.
    answer:
        The extracted ``Q(G)``.  Treat as immutable — it is never
        mutated after publication and may be shared by many readers.
    changed:
        Number of output keys that changed versus the previous snapshot
        (0 for the initial publication).
    """

    name: str
    algorithm: str
    seq: int
    version: int
    answer: Any
    changed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "algorithm": self.algorithm,
            "seq": self.seq,
            "version": self.version,
            "changed": self.changed,
        }


def _answers_equal(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except Exception:  # exotic answer types with broken __eq__
        return False


def _count_changed(old: Any, new: Any) -> int:
    if isinstance(old, dict) and isinstance(new, dict):
        changed = 0
        for key, value in new.items():
            if key not in old or old[key] != value:
                changed += 1
        changed += sum(1 for key in old if key not in new)
        return changed
    if isinstance(old, (set, frozenset)) and isinstance(new, (set, frozenset)):
        return len(old ^ new)
    return 0 if _answers_equal(old, new) else 1


class SnapshotStore:
    """The published, immutable answer table readers serve from."""

    def __init__(self) -> None:
        self._snapshots: Dict[str, AnswerSnapshot] = {}
        self._cond = threading.Condition()
        self._published = 0  # total publish() calls (windows), for stats

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def publish(self, answers: Dict[str, Any], seq: int, algorithms: Dict[str, str]) -> Dict[str, AnswerSnapshot]:
        """Atomically publish one consistent set of answers at ``seq``.

        ``answers`` maps query name → freshly-extracted answer;
        ``algorithms`` maps name → algorithm-pair name.  Every named
        query gets a new snapshot tagged ``seq``; its version bumps only
        when the answer changed.  Queries absent from ``answers`` are
        retired (unregistered).  Returns the new snapshot map.
        """
        # publish_region is the dynamic sanitizer's serial-publication /
        # monotonic-seq assertion (no-op unless REPRO_TSAN is armed).
        with publish_region(self, seq):
            return self._publish_impl(answers, seq, algorithms)

    def _publish_impl(
        self, answers: Dict[str, Any], seq: int, algorithms: Dict[str, str]
    ) -> Dict[str, AnswerSnapshot]:
        with self._cond:
            current = self._snapshots
        fresh: Dict[str, AnswerSnapshot] = {}
        for name, answer in answers.items():
            previous = current.get(name)
            if previous is None:
                fresh[name] = AnswerSnapshot(
                    name=name,
                    algorithm=algorithms.get(name, ""),
                    seq=seq,
                    version=0,
                    answer=answer,
                )
            elif _answers_equal(previous.answer, answer):
                fresh[name] = AnswerSnapshot(
                    name=name,
                    algorithm=previous.algorithm,
                    seq=seq,
                    version=previous.version,
                    answer=previous.answer,  # share: identical content
                )
            else:
                fresh[name] = AnswerSnapshot(
                    name=name,
                    algorithm=previous.algorithm,
                    seq=seq,
                    version=previous.version + 1,
                    answer=answer,
                    changed=_count_changed(previous.answer, answer),
                )
        with self._cond:
            self._snapshots = fresh
            self._published += 1
            self._cond.notify_all()
        # A fresh dict: the caller gets the same (immutable) snapshots
        # but can never mutate the map readers are now being served from.
        return dict(fresh)

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def get(self, name: str) -> AnswerSnapshot:
        """The current snapshot of one query (never blocks)."""
        # lint: allow(T003): copy-on-write read — the map is replaced,
        # never mutated, and a reference load is atomic under the GIL
        snapshot = self._snapshots.get(name)
        if snapshot is None:
            raise ReproError(f"query {name!r} is not registered")
        return snapshot

    def names(self) -> List[str]:
        # lint: allow(T003): copy-on-write read (see get)
        return list(self._snapshots)

    def wait_for(
        self, name: str, after_version: int = -1, timeout: Optional[float] = None
    ) -> Optional[AnswerSnapshot]:
        """Long-poll: block until ``name`` has a version > ``after_version``.

        Returns the newer snapshot, or ``None`` on timeout.  Raises
        :class:`~repro.errors.ReproError` if the query is (or becomes)
        unregistered.
        """
        deadline = None if timeout is None else monotonic() + timeout
        with self._cond:
            while True:
                snapshot = self._snapshots.get(name)
                if snapshot is None:
                    raise ReproError(f"query {name!r} is not registered")
                if snapshot.version > after_version:
                    return snapshot
                remaining = None if deadline is None else deadline - monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

    # ------------------------------------------------------------------
    @property
    def published_windows(self) -> int:
        with self._cond:
            return self._published

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Version/seq summary per query (the ``stats`` payload)."""
        # lint: allow(T003): copy-on-write read (see get)
        return {name: snap.as_dict() for name, snap in self._snapshots.items()}

    def __repr__(self) -> str:
        return f"SnapshotStore(queries={self.names()}, windows={self.published_windows})"
