"""The JSON-lines wire protocol of the query service.

One request per line, one response per line, both JSON objects.  The
five verbs mirror :class:`~repro.serve.service.QueryService`'s public
API:

====================  =================================================
request               fields
====================  =================================================
``register``          ``name``, ``algorithm``, ``query`` (encoded),
                      optional ``deadline`` (seconds)
``query``             ``name``
``update``            ``ops`` (list of encoded unit updates, the WAL
                      encoding), optional ``deadline``
``watch``             ``name``, ``after_version``, optional ``timeout``
``stats``             optional ``reset`` (default true)
``ping``              —
====================  =================================================

Responses carry ``{"ok": true, ...}`` on success and
``{"ok": false, "error": {"type", "message"}}`` on failure, where
``type`` is the exception class name (``Overloaded``, ``Deadline``,
``UnknownNodeError``, ...) so clients re-raise typed errors without
parsing messages.

Update encoding reuses the WAL record format
(:func:`repro.resilience.wal.encode_update`), and scalar values the
persistence encoder — the same ``{"f": "inf"}`` non-finite handling the
checkpoints use — so anything a durable session can log, a client can
send.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from ..core.persistence import _decode, _encode
from ..errors import ReproError
from ..graph.updates import Batch
from ..resilience.checkpoint import graph_from_doc, graph_to_doc
from ..resilience.wal import decode_update, encode_update
from .state import AnswerSnapshot

PROTOCOL_VERSION = 1


# ----------------------------------------------------------------------
# Answer encoding (JSON-safe views of extracted Q(G))
# ----------------------------------------------------------------------
def jsonable(answer: Any) -> Any:
    """A JSON-safe rendering of any built-in algorithm's answer.

    Dict keys become strings, sets become sorted lists, ``inf`` becomes
    the string ``"inf"`` (matching the CLI's output conventions), and
    DFS results render as their three component maps.
    """
    if isinstance(answer, dict):
        return {str(k): jsonable(v) for k, v in answer.items()}
    if isinstance(answer, (set, frozenset)):
        return sorted([jsonable(v) for v in answer], key=str)
    if isinstance(answer, tuple):
        return [jsonable(v) for v in answer]
    if isinstance(answer, float) and answer == float("inf"):
        return "inf"
    if hasattr(answer, "first") and hasattr(answer, "parent"):  # DFSResult
        return {
            "first": jsonable(answer.first),
            "last": jsonable(answer.last),
            "parent": jsonable(answer.parent),
        }
    return answer


def encode_query(query: Any) -> Dict[str, Any]:
    """Encode a query object: a hashable key or a pattern graph (Sim)."""
    if hasattr(query, "nodes") and hasattr(query, "edges"):  # a Graph
        return {"graph": graph_to_doc(query)}
    return {"key": _encode(query)}


def decode_query(doc: Optional[Dict[str, Any]]) -> Any:
    if doc is None:
        return None
    if "graph" in doc:
        return graph_from_doc(doc["graph"])
    return _decode(doc.get("key"))


def snapshot_response(snapshot: AnswerSnapshot) -> Dict[str, Any]:
    return {
        "ok": True,
        "name": snapshot.name,
        "algorithm": snapshot.algorithm,
        "seq": snapshot.seq,
        "version": snapshot.version,
        "changed": snapshot.changed,
        "answer": jsonable(snapshot.answer),
    }


def error_response(exc: BaseException) -> Dict[str, Any]:
    return {
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


# ----------------------------------------------------------------------
# Request dispatch (shared by the TCP server and in-process harnesses)
# ----------------------------------------------------------------------
def handle_request(service, doc: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one decoded request against a service; never raises.

    Protocol errors (unknown verb, malformed fields) and service errors
    (Overloaded, Deadline, validation failures) all come back as typed
    error responses — a misbehaving client must not kill its connection
    handler, let alone the service.
    """
    try:
        verb = doc.get("op")
        if verb == "ping":
            return {"ok": True, "protocol": PROTOCOL_VERSION}
        if verb == "register":
            snapshot = service.register(
                str(doc["name"]),
                str(doc["algorithm"]),
                query=decode_query(doc.get("query")),
                deadline=doc.get("deadline"),
            )
            return snapshot_response(snapshot)
        if verb == "query":
            return snapshot_response(service.read(str(doc["name"])))
        if verb == "update":
            batch = Batch([decode_update(op) for op in doc["ops"]])
            seq = service.update(batch, deadline=doc.get("deadline"))
            return {"ok": True, "seq": seq, "ops": len(batch)}
        if verb == "watch":
            snapshot = service.watch(
                str(doc["name"]),
                after_version=int(doc.get("after_version", -1)),
                timeout=doc.get("timeout"),
            )
            return snapshot_response(snapshot)
        if verb == "unregister":
            service.unregister(str(doc["name"]), deadline=doc.get("deadline"))
            return {"ok": True}
        if verb == "stats":
            return {"ok": True, "stats": service.stats(reset_window=bool(doc.get("reset", True)))}
        raise ReproError(f"unknown protocol verb {verb!r}")
    except Exception as exc:  # typed error surface, connection survives
        return error_response(exc)


def handle_line(service, line: str) -> str:
    """One request line in, one response line out (no trailing newline)."""
    try:
        doc = json.loads(line)
        if not isinstance(doc, dict):
            raise ValueError("request must be a JSON object")
    except ValueError as exc:
        return json.dumps(error_response(ReproError(f"malformed request: {exc}")))
    return json.dumps(handle_request(service, doc))
