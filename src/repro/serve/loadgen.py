"""Load generation and differential isolation checking for the service.

Two arrival disciplines, the standard pair for service benchmarking:

* **closed-loop** — ``threads`` workers issue requests back-to-back;
  throughput is limited by service latency (the classic think-time-zero
  closed system).  Good for "how fast can it go".
* **open-loop** — arrivals are scheduled at a fixed aggregate ``rate``
  regardless of completions, and latency is measured from the *scheduled*
  arrival time, so queueing delay is charged to the service (no
  coordinated omission).  Good for "what does p99 look like at load X".

Workers mix reads and writes by ``read_fraction``.  Reads pick a query
by a Zipf(``zipf_s``) popularity law over the registered names — the
skewed standing-query popularity a real serving tier sees.  Writes are
generated so they are *always valid regardless of interleaving*: each
writer owns a private vertex and only ever touches edges incident to it,
so concurrent writers can never produce contradictory batches, while
still perturbing real answers (private vertices create shortcut paths
through the base graph's nodes).

Every successful write records ``(seq, ops)`` and every read records
``(name, seq, answer)``; :func:`verify_isolation` then replays the write
prefix ``0..seq`` onto the initial graph and batch-recomputes each read's
answer at exactly its reported sequence number.  Any mismatch is a torn
read — the differential isolation gate the CI smoke step enforces.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from time import monotonic, sleep
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..graph.graph import Graph
from ..graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexInsertion,
    apply_updates,
)
from ..metrics.latency import percentiles
from ..session import ALGORITHM_PAIRS
from .client import ServiceClient
from .protocol import jsonable


@dataclass
class LoadReport:
    """Everything one load run measured (and recorded for verification)."""

    mode: str = "closed"
    duration: float = 0.0
    reads: int = 0
    writes: int = 0
    read_errors: Dict[str, int] = field(default_factory=dict)
    write_errors: Dict[str, int] = field(default_factory=dict)
    read_latencies: List[float] = field(default_factory=list)
    write_latencies: List[float] = field(default_factory=list)
    #: (name, seq, wire answer) per successful read.
    read_records: List[Tuple[str, int, Any]] = field(default_factory=list)
    #: (seq, [Update, ...]) per successful write.
    write_records: List[Tuple[int, List[Update]]] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        ops = self.reads + self.writes
        return ops / self.duration if self.duration > 0 else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "duration_s": round(self.duration, 3),
            "reads": self.reads,
            "writes": self.writes,
            "throughput_ops_s": round(self.throughput, 1),
            "read_latency_s": percentiles(self.read_latencies),
            "write_latency_s": percentiles(self.write_latencies),
            "read_errors": dict(self.read_errors),
            "write_errors": dict(self.write_errors),
        }


def _zipf_weights(count: int, s: float) -> List[float]:
    return [1.0 / (rank ** s) for rank in range(1, count + 1)]


def _private_node(tid: int, seed: int, base_nodes: List[Any]) -> Any:
    """A fresh node id *comparable with* the base graph's node ids.

    Several algorithms order node ids (CC label election, SSSP heaps),
    so mixing ``str`` writer ids into an ``int`` graph would poison the
    fixpoint with ``TypeError``s.  The id is salted with the run seed so
    back-to-back runs against the same server (different seeds) don't
    collide with vertices a previous run already inserted.
    """
    if all(isinstance(node, int) for node in base_nodes):
        return 1_000_000_000 + seed * 1_000 + tid
    return f"loadgen-{seed}-{tid}"


class _Writer:
    """Per-thread write-op generator over a private vertex.

    All edges touch the private vertex, so batches from different
    writers commute and never contradict; the local ``edges`` set keeps
    each writer's own inserts/deletes consistent with the live graph.
    """

    def __init__(
        self,
        node: Any,
        base_nodes: List[Any],
        rng: random.Random,
        delete_bias: float = 0.4,
    ) -> None:
        self.node = node
        self.base_nodes = base_nodes
        self.rng = rng
        self.delete_bias = delete_bias
        self.edges: Dict[Tuple[Any, Any], float] = {}
        self.introduced = False

    def next_batch(self) -> List[Update]:
        if not self.introduced:
            self.introduced = True
            return [VertexInsertion(self.node)]
        rng = self.rng
        if self.edges and (rng.random() < self.delete_bias or len(self.edges) > 12):
            edge = rng.choice(list(self.edges))
            del self.edges[edge]
            return [EdgeDeletion(*edge)]
        base = rng.choice(self.base_nodes)
        edge = (base, self.node) if rng.random() < 0.5 else (self.node, base)
        # Never hold both orientations: on an undirected graph they are
        # the *same* edge, and re-inserting it would be contradictory.
        for existing in (edge, (edge[1], edge[0])):
            if existing in self.edges:
                del self.edges[existing]
                return [EdgeDeletion(*existing)]
        weight = round(rng.uniform(0.5, 4.0), 3)
        self.edges[edge] = weight
        return [EdgeInsertion(edge[0], edge[1], weight=weight)]


def run_load(
    host: str,
    port: int,
    queries: List[str],
    duration: float = 2.0,
    read_fraction: float = 0.9,
    threads: int = 8,
    mode: str = "closed",
    rate: Optional[float] = None,
    zipf_s: float = 1.1,
    seed: int = 0,
    base_nodes: Optional[List[Any]] = None,
    write_deadline: Optional[float] = None,
    record: bool = True,
    max_writes: Optional[int] = None,
    delete_bias: float = 0.4,
) -> LoadReport:
    """Drive mixed read/write load against a running server.

    ``mode="open"`` requires ``rate`` (aggregate ops/second); latency is
    then measured from each op's scheduled arrival.  ``base_nodes`` are
    the graph nodes writers attach their private edges to (default: the
    node ``0``...``9`` range is *not* assumed — pass real node ids).
    ``max_writes`` caps the total writes issued (e.g. a 500-op stream).
    ``delete_bias`` is each writer's probability of deleting one of its
    live edges instead of inserting (default 0.4; raise it for
    deletion-heavy mixes that stress the sharded raise protocol).
    """
    if mode not in ("closed", "open"):
        raise ReproError(f"unknown load mode {mode!r}")
    if mode == "open" and not rate:
        raise ReproError("open-loop load requires a rate (ops/second)")
    if not queries:
        raise ReproError("load generation needs at least one registered query")
    base_nodes = list(base_nodes or [0])

    report = LoadReport(mode=mode)
    lock = threading.Lock()
    weights = _zipf_weights(len(queries), zipf_s)
    stop_at = monotonic() + duration
    writes_left = [max_writes if max_writes is not None else -1]  # -1 = unbounded

    def take_write_slot() -> bool:
        with lock:
            if writes_left[0] == 0:
                return False
            if writes_left[0] > 0:
                writes_left[0] -= 1
            return True

    def worker(tid: int) -> None:
        rng = random.Random((seed << 8) ^ tid)
        writer = _Writer(
            _private_node(tid, seed, base_nodes), base_nodes, rng, delete_bias=delete_bias
        )
        can_write = True
        client = ServiceClient(host, port, timeout=max(10.0, duration * 4))
        interval = threads / rate if rate else 0.0
        next_arrival = monotonic() + rng.random() * interval if rate else 0.0
        try:
            while True:
                now = monotonic()
                if now >= stop_at:
                    return
                if mode == "open":
                    if next_arrival > now:
                        sleep(min(next_arrival - now, stop_at - now))
                        if monotonic() >= stop_at:
                            return
                    started = next_arrival  # charge queueing to the service
                    next_arrival += interval
                else:
                    started = monotonic()

                is_read = (
                    not can_write
                    or rng.random() < read_fraction
                    or not take_write_slot()
                )
                try:
                    if is_read:
                        name = rng.choices(queries, weights=weights)[0]
                        response = client.query(name)
                        elapsed = monotonic() - started
                        with lock:
                            report.reads += 1
                            report.read_latencies.append(elapsed)
                            if record:
                                report.read_records.append(
                                    (name, int(response["seq"]), response["answer"])
                                )
                    else:
                        ops = writer.next_batch()
                        seq = client.update(ops, deadline=write_deadline)
                        elapsed = monotonic() - started
                        with lock:
                            report.writes += 1
                            report.write_latencies.append(elapsed)
                            if record:
                                report.write_records.append((seq, ops))
                except ReproError as exc:
                    kind = type(exc).__name__
                    with lock:
                        bucket = report.read_errors if is_read else report.write_errors
                        bucket[kind] = bucket.get(kind, 0) + 1
                    if not is_read:
                        # The op's effect is unknown (Deadline) or absent
                        # (Overloaded), so this writer's local edge model
                        # may diverge from the graph — stop writing, keep
                        # reading.
                        can_write = False
                        sleep(0.005)
        finally:
            client.close()

    started = monotonic()
    pool = [threading.Thread(target=worker, args=(tid,), daemon=True) for tid in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(duration + 30.0)
    report.duration = monotonic() - started
    return report


# ----------------------------------------------------------------------
# Differential isolation verification
# ----------------------------------------------------------------------
def verify_isolation(
    initial_graph: Graph,
    query_specs: Dict[str, Tuple[str, Any]],
    report: LoadReport,
    base_seq: int = -1,
    max_violations: int = 10,
) -> List[str]:
    """Check every recorded read against a batch recomputation at its seq.

    ``query_specs`` maps query name → ``(algorithm name, query object)``
    as registered.  The recorded writes are replayed in sequence order
    onto a copy of ``initial_graph``; for every read at sequence ``s``
    the corresponding prefix graph's batch answer must equal the served
    answer exactly (zero torn reads).  Reads beyond the contiguous write
    prefix (a shed write leaves a gap) are skipped — their prefix graph
    is unknowable — and reported as a skip count, never silently.

    Returns a list of human-readable violation strings (empty = clean).
    """
    violations: List[str] = []
    writes = sorted(report.write_records, key=lambda pair: pair[0])
    seqs = [seq for seq, _ops in writes]
    if len(set(seqs)) != len(seqs):
        violations.append("duplicate write sequence numbers recorded")
        return violations

    # The verifiable frontier: the longest contiguous seq prefix.
    frontier = base_seq
    by_seq: Dict[int, List[Update]] = dict(writes)
    while frontier + 1 in by_seq:
        frontier += 1

    reads = sorted(report.read_records, key=lambda rec: rec[1])
    graph = initial_graph.copy()
    current = base_seq
    oracle_cache: Dict[Tuple[str, int], Any] = {}
    skipped = 0
    for name, seq, answer in reads:
        if seq < base_seq or seq > frontier:
            skipped += 1
            continue
        if name not in query_specs:
            skipped += 1
            continue
        while current < seq:
            current += 1
            apply_updates(graph, Batch(by_seq[current]))
        key = (name, seq)
        if key not in oracle_cache:
            algorithm, query = query_specs[name]
            batch_factory, _inc = ALGORITHM_PAIRS[algorithm]
            batch = batch_factory()
            state = batch.run(graph.copy(), query)
            oracle_cache[key] = jsonable(batch.answer(state, graph, query))
        expected = oracle_cache[key]
        if answer != expected:
            if len(violations) < max_violations:
                diff = _first_diff(expected, answer)
                violations.append(
                    f"torn read: {name!r} at seq {seq} diverges from the "
                    f"batch-recomputed answer ({diff})"
                )
    if skipped and not violations:
        # Not a failure, but never silent: callers log it.
        pass
    return violations


def _first_diff(expected: Any, got: Any) -> str:
    if isinstance(expected, dict) and isinstance(got, dict):
        for key in expected:
            if key not in got:
                return f"missing key {key!r}"
            if expected[key] != got[key]:
                return f"key {key!r}: expected {expected[key]!r}, got {got[key]!r}"
        extra = [key for key in got if key not in expected]
        if extra:
            return f"unexpected key {extra[0]!r}"
    return f"expected {str(expected)[:80]}..., got {str(got)[:80]}..."
