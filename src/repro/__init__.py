"""repro — reproduction of "Incrementalizing Graph Algorithms" (SIGMOD 2021).

The library deduces incremental graph algorithms from batch *fixpoint*
algorithms, with correctness (Theorem 1) and relative boundedness
(Theorem 3) guarantees.  Quickstart::

    from repro import Graph, Batch, EdgeInsertion, Dijkstra, IncSSSP

    g = Graph(directed=True)
    g.add_edge(0, 1, weight=2.0)
    g.add_edge(1, 2, weight=2.0)

    batch = Dijkstra()
    state = batch.run(g, 0)                # fixpoint of the batch run
    print(batch.answer(state, g, 0))       # {0: 0.0, 1: 2.0, 2: 4.0}

    inc = IncSSSP()
    delta = Batch([EdgeInsertion(0, 2, weight=1.0)])
    result = inc.apply(g, state, delta, 0) # ΔO: only node 2 changed
    print(result.changes)                  # {2: (4.0, 1.0)}

Package map
-----------
* :mod:`repro.core` — the fixpoint model, the generic engine, the scope
  function ``h`` of Figure 4, and boundedness verification.
* :mod:`repro.algorithms` — SSSP, CC, Sim, DFS, LCC (batch + deduced).
* :mod:`repro.baselines` — the competing dynamic algorithms of Section 6.
* :mod:`repro.graph` — graphs, updates ΔG, temporal streams, CSR, I/O.
* :mod:`repro.generators` — synthetic graphs, update streams, patterns.
* :mod:`repro.datasets` — laptop-scale proxies of the paper's datasets.
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.
"""

from .algorithms import (
    CCfp,
    CorenessFp,
    DFSfp,
    DFSResult,
    Dijkstra,
    IncCC,
    IncCoreness,
    IncDFS,
    IncLCC,
    IncReach,
    IncSSSP,
    IncSSWP,
    IncSim,
    LCCfp,
    Reachability,
    Simfp,
    WidestPath,
    cc,
    coreness,
    dfs,
    lcc,
    reach,
    sim,
    sssp,
    sswp,
)
from .core import (
    BatchAlgorithm,
    BoundednessReport,
    FixpointSpec,
    FixpointState,
    IncrementalAlgorithm,
    IncrementalResult,
    compute_aff,
    incrementalize,
    run_batch,
    run_fixpoint,
    verify_relative_boundedness,
)
from .errors import (
    DatasetError,
    FixpointError,
    GraphError,
    IncrementalizationError,
    ReproError,
    UpdateError,
)
from .graph import (
    Batch,
    CSRGraph,
    EdgeDeletion,
    EdgeEvent,
    EdgeInsertion,
    Graph,
    TemporalGraph,
    VertexDeletion,
    VertexInsertion,
    apply_updates,
    from_edges,
    updated_copy,
)
from .session import DynamicGraphSession

__version__ = "1.0.0"

__all__ = [
    "Batch",
    "BatchAlgorithm",
    "BoundednessReport",
    "CCfp",
    "CSRGraph",
    "CorenessFp",
    "DFSResult",
    "DFSfp",
    "DatasetError",
    "Dijkstra",
    "DynamicGraphSession",
    "EdgeDeletion",
    "EdgeEvent",
    "EdgeInsertion",
    "FixpointError",
    "FixpointSpec",
    "FixpointState",
    "Graph",
    "GraphError",
    "IncCC",
    "IncCoreness",
    "IncDFS",
    "IncLCC",
    "IncReach",
    "IncSSSP",
    "IncSSWP",
    "IncSim",
    "IncrementalAlgorithm",
    "IncrementalResult",
    "IncrementalizationError",
    "LCCfp",
    "Reachability",
    "ReproError",
    "Simfp",
    "WidestPath",
    "TemporalGraph",
    "UpdateError",
    "VertexDeletion",
    "VertexInsertion",
    "apply_updates",
    "cc",
    "compute_aff",
    "coreness",
    "dfs",
    "from_edges",
    "incrementalize",
    "lcc",
    "reach",
    "run_batch",
    "run_fixpoint",
    "sim",
    "sssp",
    "sswp",
    "updated_copy",
    "verify_relative_boundedness",
]
