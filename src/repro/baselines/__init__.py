"""Competitor dynamic algorithms benchmarked in Section 6 of the paper.

=========  =====================  =============================================
Query      Class                  Published algorithm
=========  =====================  =============================================
SSSP       :class:`RRSSSP`        Ramalingam–Reps unit-update SPT [39, 40]
SSSP       :class:`DynDij`        Chan–Yang batch dynamic SPT [17]
CC         :class:`DynCC`         Holm–de Lichtenberg–Thorup connectivity [27]
Sim        :class:`IncMatch`      Fan–Wang–Wu incremental simulation [23]
DFS        :class:`DynDFS`        Yang et al. fully dynamic DFS [50]
LCC        :class:`DynLCC`        Ediger et al. streaming coefficients [19]
any        :class:`UnitLoop`      the paper's ``IncX_n`` one-by-one variants
=========  =====================  =============================================
"""

from .base import DynamicAlgorithm
from .dyncc import DynCC, HDTConnectivity
from .dyndfs import DynDFS
from .dyndij import DynDij
from .dynlcc import DynLCC
from .euler_tour import EulerTourForest
from .incmatch import IncMatch
from .rr_sssp import RRSSSP
from .unit_loop import UnitLoop

__all__ = [
    "DynCC",
    "DynDFS",
    "DynDij",
    "DynLCC",
    "DynamicAlgorithm",
    "EulerTourForest",
    "HDTConnectivity",
    "IncMatch",
    "RRSSSP",
    "UnitLoop",
]
