"""Euler tour trees — the substrate of HDT dynamic connectivity.

An Euler tour tree (ETT) represents a forest so that linking two trees,
cutting a tree edge, and testing connectivity all run in O(log n)
expected time.  Each tree is stored as the circular Euler tour of its
edges, laid out in a balanced BST keyed by *position*; here the BST is a
randomized treap with parent pointers and subtree sizes (order
statistics), so positions are computed by rank and splits are positional.

Tour encoding: every vertex ``v`` contributes one *loop arc* ``(v, v)``
(its canonical occurrence), and every tree edge ``{u, v}`` contributes
two directed arcs ``(u, v)`` and ``(v, u)``.  Linking ``u`` and ``v``
rotates both tours to start at their loop arcs and concatenates

    ``tour(u) + (u, v) + tour(v) + (v, u)``;

cutting removes the two arcs and splices the tour back together.

The treap also maintains per-subtree counts of loop arcs, giving O(log n)
tree sizes — which HDT needs to pick the smaller side of a cut.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from ..errors import GraphError

Vertex = Hashable
Arc = Tuple[Vertex, Vertex]


class _ArcNode:
    """One arc of an Euler tour, as a treap node."""

    __slots__ = ("data", "priority", "left", "right", "parent", "size", "loops")

    def __init__(self, data: Arc, priority: float) -> None:
        self.data = data
        self.priority = priority
        self.left: Optional["_ArcNode"] = None
        self.right: Optional["_ArcNode"] = None
        self.parent: Optional["_ArcNode"] = None
        self.size = 1
        self.loops = 1 if data[0] == data[1] else 0

    def _refresh(self) -> None:
        size, loops = 1, 1 if self.data[0] == self.data[1] else 0
        if self.left is not None:
            size += self.left.size
            loops += self.left.loops
        if self.right is not None:
            size += self.right.size
            loops += self.right.loops
        self.size = size
        self.loops = loops


def _merge(a: Optional[_ArcNode], b: Optional[_ArcNode]) -> Optional[_ArcNode]:
    if a is None:
        return b
    if b is None:
        return a
    if a.priority < b.priority:
        right = _merge(a.right, b)
        a.right = right
        right.parent = a
        a._refresh()
        a.parent = None
        return a
    left = _merge(a, b.left)
    b.left = left
    left.parent = b
    b._refresh()
    b.parent = None
    return b


def _split(node: Optional[_ArcNode], k: int) -> Tuple[Optional[_ArcNode], Optional[_ArcNode]]:
    """Split into (first k arcs, rest)."""
    if node is None:
        return (None, None)
    left_size = node.left.size if node.left is not None else 0
    if k <= left_size:
        first, second = _split(node.left, k)
        node.left = second
        if second is not None:
            second.parent = node
        node._refresh()
        node.parent = None
        if first is not None:
            first.parent = None
        return (first, node)
    first, second = _split(node.right, k - left_size - 1)
    node.right = first
    if first is not None:
        first.parent = node
    node._refresh()
    node.parent = None
    if second is not None:
        second.parent = None
    return (node, second)


def _root_of(node: _ArcNode) -> _ArcNode:
    while node.parent is not None:
        node = node.parent
    return node


def _rank(node: _ArcNode) -> int:
    """Number of arcs strictly before ``node`` in its tour."""
    rank = node.left.size if node.left is not None else 0
    child = node
    while child.parent is not None:
        parent = child.parent
        if parent.right is child:
            rank += 1 + (parent.left.size if parent.left is not None else 0)
        child = parent
    return rank


class EulerTourForest:
    """A dynamic forest with O(log n) link / cut / connected / size.

    >>> f = EulerTourForest(seed=0)
    >>> for v in (1, 2, 3): f.add_vertex(v)
    >>> f.link(1, 2); f.connected(1, 2)
    True
    >>> f.tree_size(1)
    2
    >>> f.cut(1, 2); f.connected(1, 2)
    False
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)
        self._loop: Dict[Vertex, _ArcNode] = {}
        self._arc: Dict[Arc, _ArcNode] = {}

    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        if v in self._loop:
            return
        self._loop[v] = _ArcNode((v, v), self._rng.random())

    def remove_vertex(self, v: Vertex) -> None:
        """Remove an *isolated* vertex."""
        node = self._loop.get(v)
        if node is None:
            return
        if _root_of(node).size != 1:
            raise GraphError(f"cannot remove non-isolated vertex {v!r} from the forest")
        del self._loop[v]

    def __contains__(self, v: Vertex) -> bool:
        return v in self._loop

    # ------------------------------------------------------------------
    def _tour_root(self, v: Vertex) -> _ArcNode:
        node = self._loop.get(v)
        if node is None:
            raise GraphError(f"vertex {v!r} is not in the forest")
        return _root_of(node)

    def connected(self, u: Vertex, v: Vertex) -> bool:
        return self._tour_root(u) is self._tour_root(v)

    def tree_size(self, v: Vertex) -> int:
        """Number of vertices in ``v``'s tree."""
        return self._tour_root(v).loops

    def tree_vertices(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate the vertices of ``v``'s tree (O(size))."""
        stack: List[_ArcNode] = [self._tour_root(v)]
        while stack:
            node = stack.pop()
            if node.loops == 0:
                continue
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)
            if node.data[0] == node.data[1]:
                yield node.data[0]

    def _rerooted(self, v: Vertex) -> Optional[_ArcNode]:
        """The tour of ``v``'s tree rotated to start at ``v``'s loop arc."""
        node = self._loop[v]
        root = _root_of(node)
        k = _rank(node)
        first, second = _split(root, k)
        return _merge(second, first)

    # ------------------------------------------------------------------
    def link(self, u: Vertex, v: Vertex) -> None:
        """Add tree edge {u, v}; trees must be distinct."""
        if u not in self._loop or v not in self._loop:
            raise GraphError(f"link endpoints {u!r}, {v!r} must be forest vertices")
        if self.connected(u, v):
            raise GraphError(f"link({u!r}, {v!r}) would create a cycle")
        uv = _ArcNode((u, v), self._rng.random())
        vu = _ArcNode((v, u), self._rng.random())
        self._arc[(u, v)] = uv
        self._arc[(v, u)] = vu
        tour_u = self._rerooted(u)
        tour_v = self._rerooted(v)
        _merge(_merge(_merge(tour_u, uv), tour_v), vu)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return (u, v) in self._arc

    def cut(self, u: Vertex, v: Vertex) -> None:
        """Remove tree edge {u, v}."""
        uv = self._arc.pop((u, v), None)
        vu = self._arc.pop((v, u), None)
        if uv is None or vu is None:
            raise GraphError(f"({u!r}, {v!r}) is not a tree edge")
        i, j = _rank(uv), _rank(vu)
        if i > j:
            uv, vu = vu, uv
            i, j = j, i
        root = _root_of(uv)
        # tour = A + [uv] + B + [vu] + C ; after the cut the two trees are
        # B (the far side) and A + C.
        left, rest = _split(root, i)
        _uv_part, rest = _split(rest, 1)
        middle, rest = _split(rest, j - i - 1)
        _vu_part, right = _split(rest, 1)
        _merge(left, right)
        # `middle` becomes its own tour root implicitly (parent is None).

    def __len__(self) -> int:
        return len(self._loop)
