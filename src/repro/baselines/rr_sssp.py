"""RR — the Ramalingam–Reps dynamic SSSP algorithm for unit updates.

Reference [39, 40] of the paper: G. Ramalingam and T. Reps, *An
Incremental Algorithm for a Generalization of the Shortest-Path Problem*
(J. Algorithms 1996).  This is the classic unit-update shortest-path-tree
maintenance algorithm the paper benchmarks against in Exp-1 (Figures
6(a)/6(b)).

* **Insertion** of ``(u, v, w)``: if ``dist(u) + w < dist(v)`` the
  improvement is propagated with a Dijkstra-style heap over the
  strictly-decreasing region.
* **Deletion** of ``(u, v)``: if the edge was *tight* and ``v`` has no
  alternative tight in-edge, the *affected set* — vertices all of whose
  shortest paths used the deleted edge — is identified by the classic
  workset sweep, their distances are invalidated, and a bounded Dijkstra
  over the affected set restores them.

RR processes **unit updates only**; :meth:`apply` loops over the batch,
which is exactly the behaviour Exp-2 exposes when comparing it with the
deduced batch algorithm.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Dict, List, Set

from ..graph.graph import Graph, Node
from ..graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    VertexDeletion,
    VertexInsertion,
)
from .base import DynamicAlgorithm

INF = math.inf


class RRSSSP(DynamicAlgorithm):
    """Ramalingam–Reps dynamic single-source shortest paths."""

    name = "RR"

    def __init__(self) -> None:
        super().__init__()
        self.dist: Dict[Node, float] = {}

    # ------------------------------------------------------------------
    def build(self, graph: Graph, query: Node = None) -> None:
        self.graph = graph
        self.query = query
        self.dist = {v: INF for v in graph.nodes()}
        if graph.has_node(query):
            self.dist[query] = 0.0
            self._dijkstra_from([(0.0, query)])

    def answer(self) -> Dict[Node, float]:
        return dict(self.dist)

    # ------------------------------------------------------------------
    def _dijkstra_from(self, heap: List) -> None:
        """Settle improvements seeded in ``heap`` (lazy-deletion Dijkstra)."""
        graph, dist = self.graph, self.dist
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            for u, w in graph.out_items(v):
                candidate = d + w
                if candidate < dist[u]:
                    dist[u] = candidate
                    heapq.heappush(heap, (candidate, u))

    def _insert(self, u: Node, v: Node, w: float) -> None:
        self.graph.add_edge(u, v, weight=w)
        dist = self.dist
        dist.setdefault(u, INF)
        dist.setdefault(v, INF)
        if dist[u] + w < dist[v]:
            dist[v] = dist[u] + w
            self._dijkstra_from([(dist[v], v)])

    def _has_alternative_support(self, v: Node) -> bool:
        """Whether some in-edge of ``v`` is tight (supports dist[v])."""
        dv = self.dist[v]
        for x, w in self.graph.in_items(v):
            if self.dist.get(x, INF) + w == dv:
                return True
        return False

    def _delete(self, u: Node, v: Node) -> None:
        graph, dist, source = self.graph, self.dist, self.query
        w = graph.weight(u, v)
        graph.remove_edge(u, v)
        if v == source or dist[v] == INF or dist.get(u, INF) + w != dist[v]:
            return  # non-tight edge: distances unaffected
        if self._has_alternative_support(v):
            return

        # Phase 1: the affected set — vertices with no tight in-edge from
        # an unaffected vertex (their every shortest path died).
        affected: Set[Node] = set()
        workset = [v]
        while workset:
            z = workset.pop()
            if z in affected:
                continue
            supported = False
            for x, wx in graph.in_items(z):
                if x not in affected and dist.get(x, INF) + wx == dist[z]:
                    supported = True
                    break
            if supported:
                continue
            affected.add(z)
            for y, wy in graph.out_items(z):
                if y != source and y not in affected and dist[z] + wy == dist.get(y, INF):
                    workset.append(y)

        # Phase 2: recompute the affected set from its unaffected fringe.
        heap: List = []
        for z in affected:
            best = INF
            for x, wx in graph.in_items(z):
                if x not in affected:
                    candidate = dist.get(x, INF) + wx
                    if candidate < best:
                        best = candidate
            dist[z] = best
            if best < INF:
                heapq.heappush(heap, (best, z))
        self._dijkstra_from(heap)

    # ------------------------------------------------------------------
    def apply(self, delta: Batch) -> None:
        """Process ``ΔG`` as a sequence of unit updates (RR's model)."""
        self._require_built()
        for update in delta.expanded(self.graph):
            if isinstance(update, EdgeInsertion):
                self._insert(update.u, update.v, update.weight)
                if not self.graph.directed:
                    # the single undirected edge relaxes both ways
                    if self.dist[update.v] + update.weight < self.dist[update.u]:
                        self.dist[update.u] = self.dist[update.v] + update.weight
                        self._dijkstra_from([(self.dist[update.u], update.u)])
            elif isinstance(update, EdgeDeletion):
                self._delete(update.u, update.v)
                if not self.graph.directed:
                    # both directions may have lost support
                    self._recheck_undirected(update.u)
            elif isinstance(update, VertexInsertion):
                self.graph.ensure_node(update.v, label=update.label)
                self.dist.setdefault(update.v, INF)
            elif isinstance(update, VertexDeletion):
                if self.graph.has_node(update.v):
                    self.graph.remove_node(update.v)
                self.dist.pop(update.v, None)

    def _recheck_undirected(self, u: Node) -> None:
        """After an undirected deletion, repair ``u``'s side as well."""
        dist, graph, source = self.dist, self.graph, self.query
        if u == source or dist.get(u, INF) == INF:
            return
        if self._has_alternative_support(u) or dist[u] == 0.0:
            return
        # u lost its support: rerun the deletion repair rooted at u by
        # reusing the affected-set machinery with a zero-weight phantom.
        affected: Set[Node] = set()
        workset = [u]
        while workset:
            z = workset.pop()
            if z in affected:
                continue
            supported = False
            for x, wx in graph.in_items(z):
                if x not in affected and dist.get(x, INF) + wx == dist[z]:
                    supported = True
                    break
            if supported:
                continue
            affected.add(z)
            for y, wy in graph.out_items(z):
                if y != source and y not in affected and dist[z] + wy == dist.get(y, INF):
                    workset.append(y)
        heap: List = []
        for z in affected:
            best = INF
            for x, wx in graph.in_items(z):
                if x not in affected:
                    candidate = dist.get(x, INF) + wx
                    if candidate < best:
                        best = candidate
            dist[z] = best
            if best < INF:
                heapq.heappush(heap, (best, z))
        self._dijkstra_from(heap)
