"""IncMatch — incremental graph pattern matching via simulation.

Reference [23] of the paper: W. Fan, X. Wang, Y. Wu, *Incremental graph
pattern matching* (TODS 2013).  IncMatch maintains the maximum simulation
relation ``Q(G)`` under edge updates, processing insertions and deletions
with *separate* routines (the asymmetry the paper's Section 7 calls out
against its own uniform scope function):

* **Deletions** can only shrink the relation.  Seeds are the match pairs
  of the deleted edges' tails; invalidations propagate backwards over the
  data/pattern in-edges, exactly like the batch refinement but localized.
* **Insertions** can only grow the relation.  IncMatch collects the
  *candidate area*: label-matching pairs within pattern-diameter hops
  (backwards) of the inserted edges, optimistically adds them, and then
  refines the candidate area downwards until consistent — candidates that
  survive are genuinely in the new relation.

Auxiliary structures: the current relation as Boolean membership plus the
candidate bookkeeping — comparable space to Sim_fp plus the match set,
which is what Exp-4 measures.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional, Set, Tuple

from ..errors import GraphError
from ..graph.graph import Graph, Node
from ..graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    VertexDeletion,
    VertexInsertion,
)
from .base import DynamicAlgorithm

Pair = Tuple[Node, Node]


def _pattern_diameter(pattern: Graph) -> int:
    """Longest shortest-path distance in the (undirected view of) pattern."""
    nodes = list(pattern.nodes())
    best = 0
    for s in nodes:
        depth = {s: 0}
        queue = deque([s])
        while queue:
            x = queue.popleft()
            for y in list(pattern.out_neighbors(x)) + list(pattern.in_neighbors(x)):
                if y not in depth:
                    depth[y] = depth[x] + 1
                    queue.append(y)
        if depth:
            best = max(best, max(depth.values()))
    return max(1, best)


class IncMatch(DynamicAlgorithm):
    """Fan–Wang–Wu incremental simulation."""

    name = "IncMatch"

    def __init__(self) -> None:
        super().__init__()
        self.matches: Set[Pair] = set()
        self._diameter = 1

    # ------------------------------------------------------------------
    def build(self, graph: Graph, query: Graph = None) -> None:
        if query is None:
            raise GraphError("IncMatch requires a pattern graph as the query")
        self.graph = graph
        self.query = query
        self._diameter = _pattern_diameter(query)
        self.matches = self._batch_sim(
            {
                (v, u)
                for v in graph.nodes()
                for u in query.nodes()
                if graph.node_label(v) == query.node_label(u)
            }
        )

    def answer(self) -> Set[Pair]:
        return set(self.matches)

    # ------------------------------------------------------------------
    def _satisfied(self, v: Node, u: Node, relation: Set[Pair]) -> bool:
        graph, pattern = self.graph, self.query
        if graph.node_label(v) != pattern.node_label(u):
            return False
        for u_next in pattern.out_neighbors(u):
            if not any((v_next, u_next) in relation for v_next in graph.out_neighbors(v)):
                return False
        return True

    def _refine(self, relation: Set[Pair], dirty: Optional[Set[Pair]] = None) -> Set[Pair]:
        """Prune ``relation`` to the maximum simulation, worklist style."""
        graph, pattern = self.graph, self.query
        queue = deque(dirty if dirty is not None else relation)
        queued = set(queue)
        while queue:
            pair = queue.popleft()
            queued.discard(pair)
            if pair not in relation:
                continue
            v, u = pair
            if self._satisfied(v, u, relation):
                continue
            relation.discard(pair)
            for v_prev in graph.in_neighbors(v):
                for u_prev in pattern.in_neighbors(u):
                    dep = (v_prev, u_prev)
                    if dep in relation and dep not in queued:
                        queue.append(dep)
                        queued.add(dep)
        return relation

    def _batch_sim(self, initial: Set[Pair]) -> Set[Pair]:
        return self._refine(initial)

    # ------------------------------------------------------------------
    def _apply_deletions(self, deleted: Set[Tuple[Node, Node]]) -> None:
        """Localized re-refinement after edge deletions (shrink only)."""
        pattern = self.query
        dirty: Set[Pair] = set()
        for a, b in deleted:
            tails = (a,) if self.graph.directed else (a, b)
            for tail in tails:
                if not self.graph.has_node(tail):
                    continue
                for u in pattern.nodes():
                    if (tail, u) in self.matches:
                        dirty.add((tail, u))
        self._refine(self.matches, dirty)

    def _apply_insertions(self, inserted: Set[Tuple[Node, Node]]) -> None:
        """Candidate-area expansion and refinement (grow only).

        Candidates are the false, label-matching pairs *backward-reachable*
        over dependency edges (``in_nbr(v) × in_nbr_Q(u)``) from the tails
        of inserted edges — the closure of everything whose retraction may
        no longer be justified.  They are added optimistically and then
        refined downwards; the survivors are exactly the new matches
        (greatest-fixpoint semantics).
        """
        graph, pattern = self.graph, self.query

        def candidate(v: Node, u: Node) -> bool:
            return (v, u) not in self.matches and graph.node_label(v) == pattern.node_label(u)

        seeds: Set[Pair] = set()
        for a, b in inserted:
            tails = (a,) if graph.directed else (a, b)
            for tail in tails:
                if not graph.has_node(tail):
                    continue
                for u in pattern.nodes():
                    if candidate(tail, u):
                        seeds.add((tail, u))
        closure: Set[Pair] = set(seeds)
        queue = deque(seeds)
        while queue:
            v, u = queue.popleft()
            for v_prev in graph.in_neighbors(v):
                for u_prev in pattern.in_neighbors(u):
                    dep = (v_prev, u_prev)
                    if dep not in closure and candidate(v_prev, u_prev):
                        closure.add(dep)
                        queue.append(dep)
        if not closure:
            return
        optimistic = self.matches | closure
        self._refine(optimistic, set(closure))
        self.matches = optimistic

    # ------------------------------------------------------------------
    def apply(self, delta: Batch) -> None:
        self._require_built()
        inserted: Set[Tuple[Node, Node]] = set()
        deleted: Set[Tuple[Node, Node]] = set()
        for update in delta.expanded(self.graph):
            if isinstance(update, EdgeInsertion):
                self.graph.add_edge(update.u, update.v, weight=update.weight)
                inserted.add((update.u, update.v))
            elif isinstance(update, EdgeDeletion):
                self.graph.remove_edge(update.u, update.v)
                deleted.add((update.u, update.v))
            elif isinstance(update, VertexInsertion):
                self.graph.ensure_node(update.v, label=update.label)
            elif isinstance(update, VertexDeletion):
                if self.graph.has_node(update.v):
                    self.graph.remove_node(update.v)
                self.matches = {(v, u) for (v, u) in self.matches if v != update.v}
        # The published algorithm handles the two kinds separately:
        # deletions first (shrink), then insertions (grow + refine).
        if deleted:
            self._apply_deletions(deleted)
        if inserted:
            self._apply_insertions(inserted)
