"""DynDij — batch dynamic shortest-path-tree maintenance.

Reference [17] of the paper: E. P. F. Chan and Y. Yang, *Shortest Path
Tree Computation in Dynamic Graphs* (IEEE Trans. Computers 2009).  Their
algorithms (MBallString / MFP) process a *set* of edge updates at once by
identifying the subtrees of the shortest-path tree rooted at update
points, marking them dirty, and repairing all of them with one truncated
Dijkstra pass.  This module implements that scheme:

1. apply all edge changes to the graph;
2. collect *increase roots* — heads of deleted or weight-increased tight
   edges whose shortest paths died — and detach their whole SPT subtrees
   (distances invalidated);
3. seed a heap with (a) the best boundary estimate of every dirty vertex
   from clean in-neighbors and (b) heads of inserted edges with improved
   estimates;
4. run one Dijkstra pass restricted to the dirty/improved region.

DynDij maintains explicit parent pointers (the SPT) as its auxiliary
structure, which is the space overhead Exp-4 measures against the
deduced IncSSSP.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set

from ..graph.graph import Graph, Node
from ..graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    VertexDeletion,
    VertexInsertion,
    apply_updates,
)
from .base import DynamicAlgorithm

INF = math.inf


class DynDij(DynamicAlgorithm):
    """Chan–Yang style batch dynamic SSSP (shortest-path tree repair)."""

    name = "DynDij"

    def __init__(self) -> None:
        super().__init__()
        self.dist: Dict[Node, float] = {}
        self.parent: Dict[Node, Optional[Node]] = {}

    # ------------------------------------------------------------------
    def build(self, graph: Graph, query: Node = None) -> None:
        self.graph = graph
        self.query = query
        self.dist = {v: INF for v in graph.nodes()}
        self.parent = {v: None for v in graph.nodes()}
        if graph.has_node(query):
            self.dist[query] = 0.0
            self._dijkstra([(0.0, query)])

    def answer(self) -> Dict[Node, float]:
        return dict(self.dist)

    # ------------------------------------------------------------------
    def _dijkstra(self, heap: List) -> None:
        """Settle all improvements seeded in ``heap`` (lazy deletion)."""
        graph, dist, parent = self.graph, self.dist, self.parent
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            for u, w in graph.out_items(v):
                candidate = d + w
                if candidate < dist[u]:
                    dist[u] = candidate
                    parent[u] = v
                    heapq.heappush(heap, (candidate, u))

    def _detach_subtree(self, root: Node, dirty: Set[Node]) -> None:
        """Invalidate the SPT subtree below ``root`` (inclusive)."""
        stack = [root]
        while stack:
            z = stack.pop()
            if z in dirty or self.dist.get(z, INF) == INF:
                continue
            dirty.add(z)
            for y in self.graph.out_neighbors(z):
                if self.parent.get(y) == z and y not in dirty:
                    stack.append(y)

    # ------------------------------------------------------------------
    def apply(self, delta: Batch) -> None:
        """Repair the SPT under the whole batch at once."""
        self._require_built()
        graph, dist, parent, source = self.graph, self.dist, self.parent, self.query
        delta = delta.expanded(graph)

        # Record which deletions were tree edges before touching the graph.
        increase_roots: List[Node] = []
        for update in delta:
            if isinstance(update, EdgeDeletion):
                u, v = update.u, update.v
                if parent.get(v) == u:
                    increase_roots.append(v)
                if not graph.directed and parent.get(u) == v:
                    increase_roots.append(u)
            elif isinstance(update, VertexDeletion):
                v = update.v
                if graph.has_node(v):
                    nbrs = graph.out_neighbors(v) if graph.directed else graph.neighbors(v)
                    for y in list(nbrs):
                        if parent.get(y) == v:
                            increase_roots.append(y)

        apply_updates(graph, delta)
        for update in delta:
            if isinstance(update, VertexInsertion):
                dist.setdefault(update.v, INF)
                parent.setdefault(update.v, None)
            elif isinstance(update, VertexDeletion):
                dist.pop(update.v, None)
                parent.pop(update.v, None)

        # Detach every affected subtree in one sweep.
        dirty: Set[Node] = set()
        for root in increase_roots:
            if root in dist:
                self._detach_subtree(root, dirty)

        heap: List = []
        for z in dirty:
            dist[z] = INF
            parent[z] = None
        for z in dirty:
            best, best_parent = INF, None
            for x, wx in graph.in_items(z):
                if x not in dirty:
                    candidate = dist.get(x, INF) + wx
                    if candidate < best:
                        best, best_parent = candidate, x
            if best < INF:
                dist[z] = best
                parent[z] = best_parent
                heapq.heappush(heap, (best, z))

        # Inserted edges can only improve distances; seed their heads.
        # Skip edges that did not survive the batch (insert-then-delete).
        for update in delta:
            if isinstance(update, EdgeInsertion):
                if not graph.has_edge(update.u, update.v):
                    continue
                for a, b in ((update.u, update.v),) + (
                    ((update.v, update.u),) if not graph.directed else ()
                ):
                    if a in dist and b in dist and b != source:
                        candidate = dist[a] + graph.weight(a, b)
                        if candidate < dist[b]:
                            dist[b] = candidate
                            parent[b] = a
                            heapq.heappush(heap, (candidate, b))

        self._dijkstra(heap)
