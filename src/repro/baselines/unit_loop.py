"""The ``IncX_n`` variants: process batch updates one unit at a time.

Section 6 of the paper benchmarks, besides each deduced ``IncX``, a
variant ``IncX_n`` that feeds the same machinery one unit update at a
time.  Exp-2 shows the batch treatment winning consistently (``IncSSSP``
is 20–31× faster than ``IncSSSP_n``), because unit-at-a-time processing
re-derives the scope and re-runs the step function per edge.

:class:`UnitLoop` wraps any incremental algorithm with the same
``apply`` signature and splits the batch.
"""

from __future__ import annotations

from typing import Any

from ..core.incremental import IncrementalResult
from ..core.state import FixpointState
from ..graph.graph import Graph
from ..graph.updates import Batch


class UnitLoop:
    """``IncX_n``: the wrapped algorithm applied per unit update."""

    def __init__(self, inner) -> None:
        self.inner = inner

    @property
    def name(self) -> str:
        return f"{self.inner.name}_n"

    def apply(
        self,
        graph: Graph,
        state: FixpointState,
        delta: Batch,
        query: Any = None,
        trace: bool = False,
        measure: bool = False,
    ) -> IncrementalResult:
        """Apply each unit update separately; merge the results."""
        merged = IncrementalResult()
        first_values = {}
        for unit in delta.unit_batches():
            result = self.inner.apply(graph, state, unit, query, trace=trace, measure=measure)
            merged.scope |= result.scope
            merged.h_counter.merge(result.h_counter)
            merged.engine_counter.merge(result.engine_counter)
            for key, (old, new) in result.changes.items():
                if key not in first_values:
                    first_values[key] = old
                merged.changes[key] = (first_values[key], new)
        # Drop keys that ended where they started (net no-ops).
        merged.changes = {
            key: (old, new) for key, (old, new) in merged.changes.items() if old != new
        }
        return merged
