"""DynDFS — fully dynamic depth-first search.

Reference [50] of the paper: B. Yang, D. Wen, L. Qin, Y. Zhang, X. Wang,
X. Lin, *Fully Dynamic Depth-First Search in Directed Graphs* (PVLDB
2019).  Their structure maintains a DFS tree of a directed graph under
edge updates, rebuilding the part of the traversal an update invalidates.

This implementation maintains the same *canonical* DFS tree as
:class:`~repro.algorithms.dfs.DFSfp` and repairs per unit update by
recomputing the traversal suffix from the update's coarse anchor point
``min(first[u], first[v])`` — without the consideration-slot and
tree-edge analyses that make the deduced IncDFS skip no-op updates.  Two
consequences, matching the paper's measurements:

* on unit updates DynDFS does strictly more work than IncDFS (Exp-1:
  IncDFS is ~31× faster on insertions, most of which IncDFS proves
  to be no-ops while DynDFS rebuilds a suffix);
* batch updates are processed one by one, so IncDFS wins by a growing
  margin as ``|ΔG|`` grows (Exp-2(1e)).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from ..algorithms.dfs import DFSResult, _continue_traversal, _scan_neighbors
from ..graph.graph import Graph, Node
from ..graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    VertexDeletion,
    VertexInsertion,
)
from ..metrics.counters import NullCounter
from .base import DynamicAlgorithm

INF = math.inf


class DynDFS(DynamicAlgorithm):
    """Fully dynamic DFS with coarse suffix rebuilding."""

    name = "DynDFS"

    def __init__(self) -> None:
        super().__init__()
        self.first: Dict[Node, int] = {}
        self.last: Dict[Node, int] = {}
        self.parent: Dict[Node, Optional[Node]] = {}
        self._counter = NullCounter()

    # ------------------------------------------------------------------
    def build(self, graph: Graph, query: Any = None) -> None:
        self.graph = graph
        self.query = query
        self.first, self.last, self.parent = {}, {}, {}
        _continue_traversal(
            graph, self.first, self.last, self.parent, set(), 0, [], self._counter
        )

    def answer(self) -> DFSResult:
        return DFSResult(first=dict(self.first), last=dict(self.last), parent=dict(self.parent))

    # ------------------------------------------------------------------
    def _rebuild_from(self, t_star: float) -> None:
        """Recompute the traversal suffix from time ``t_star``."""
        graph = self.graph
        first: Dict[Node, int] = {}
        last: Dict[Node, int] = {}
        parent: Dict[Node, Optional[Node]] = {}
        discovered = set()
        active = []
        for v in graph.nodes():
            v_first = self.first.get(v, INF)
            if v_first < t_star:
                discovered.add(v)
                first[v] = v_first
                parent[v] = self.parent.get(v)
                if self.last.get(v, INF) < t_star:
                    last[v] = self.last[v]
                else:
                    active.append(v)
        active.sort(key=first.get)
        stack = [(v, iter(_scan_neighbors(graph, v))) for v in active]
        _continue_traversal(
            graph, first, last, parent, discovered, int(t_star), stack, self._counter
        )
        self.first, self.last, self.parent = first, last, parent

    def _unit_anchor(self, u: Node, v: Node) -> float:
        return min(self.first.get(u, INF), self.first.get(v, INF))

    def apply(self, delta: Batch) -> None:
        """Process ``ΔG`` one unit update at a time."""
        self._require_built()
        graph = self.graph
        for update in delta.expanded(graph):
            if isinstance(update, EdgeInsertion):
                anchor = self._unit_anchor(update.u, update.v)
                graph.add_edge(update.u, update.v, weight=update.weight, label=update.label)
                self._rebuild_from(anchor if anchor < INF else 0)
            elif isinstance(update, EdgeDeletion):
                anchor = self._unit_anchor(update.u, update.v)
                graph.remove_edge(update.u, update.v)
                self._rebuild_from(anchor if anchor < INF else 0)
            elif isinstance(update, VertexInsertion):
                graph.ensure_node(update.v, label=update.label)
                self._rebuild_from(0)
            elif isinstance(update, VertexDeletion):
                anchor = self.first.get(update.v, 0)
                if graph.has_node(update.v):
                    graph.remove_node(update.v)
                self.first.pop(update.v, None)
                self.last.pop(update.v, None)
                self.parent.pop(update.v, None)
                self._rebuild_from(anchor)
