"""Common interface for the competitor dynamic algorithms of Section 6.

The paper compares its deduced algorithms against fine-tuned dynamic
(incremental) algorithms from the literature.  Unlike the framework's
:class:`~repro.core.incremental.IncrementalAlgorithm` — which is stateless
and operates on a shared :class:`FixpointState` — these baselines are
*stateful objects* that own their graph and auxiliary structures, which is
how dynamic-algorithm libraries are typically shipped.

Protocol::

    algo = SomeBaseline()
    algo.build(graph, query)    # preprocess; takes ownership of `graph`
    algo.apply(delta)           # maintain under ΔG (mutates the graph)
    algo.answer()               # current Q(G)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from ..errors import IncrementalizationError
from ..graph.graph import Graph
from ..graph.updates import Batch


class DynamicAlgorithm(ABC):
    """A stateful dynamic graph algorithm maintaining ``Q(G)`` under ΔG."""

    name: str = "dynamic"

    def __init__(self) -> None:
        self.graph: Graph = None
        self.query: Any = None

    @abstractmethod
    def build(self, graph: Graph, query: Any = None) -> None:
        """Preprocess ``graph`` (kept by reference and mutated by apply)."""

    @abstractmethod
    def apply(self, delta: Batch) -> None:
        """Apply ``ΔG`` and maintain the answer."""

    @abstractmethod
    def answer(self) -> Any:
        """The current ``Q(G)``."""

    def _require_built(self) -> None:
        if self.graph is None:
            raise IncrementalizationError(f"{self.name}: apply() before build()")
