"""DynCC — fully dynamic connectivity (Holm–de Lichtenberg–Thorup).

Reference [27] of the paper: J. Holm, K. de Lichtenberg, M. Thorup,
*Poly-logarithmic deterministic fully-dynamic algorithms for
connectivity...* (J. ACM 2001).  The classic structure:

* edges carry a *level* ``0 ≤ ℓ < L`` (``L ≈ log₂ n``);
* for each level ``i`` an Euler-tour forest ``F_i`` spans the edges of
  level ``≥ i``, with ``F_0`` a spanning forest of the whole graph;
* **insert**: a new edge becomes a level-0 tree edge if it connects two
  trees of ``F_0``, otherwise a level-0 non-tree edge;
* **delete** of a tree edge at level ``ℓ``: cut it from ``F_0 … F_ℓ``,
  then search levels ``ℓ … 0`` for a replacement — promote the smaller
  side's level-``i`` tree edges to ``i+1``, scan its level-``i`` non-tree
  edges, promote those that fail to reconnect, and splice in the first
  that succeeds.

Simplification (documented in DESIGN.md): the smaller side is enumerated
by walking its Euler tour (O(size) instead of O(log) amortized via
augmented bits).  The amortized promotion argument still bounds total
work, the structure is exact, and — as the paper observes in Exp-2 — it
processes batch updates one unit at a time and keeps ``L`` forests alive,
which is precisely the memory/batch weakness our benchmarks reproduce.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..errors import GraphError
from ..graph.graph import Graph, Node
from ..graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    VertexDeletion,
    VertexInsertion,
)
from .base import DynamicAlgorithm
from .euler_tour import EulerTourForest


def _key(u: Node, v: Node) -> Tuple[Node, Node]:
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class HDTConnectivity:
    """The bare HDT structure: insert/delete/connected on an edge set."""

    def __init__(self, max_vertices: int = 2, seed: Optional[int] = None) -> None:
        self.levels = max(1, math.ceil(math.log2(max(2, max_vertices))) + 1)
        self.forests: List[EulerTourForest] = [
            EulerTourForest(seed=None if seed is None else seed + i)
            for i in range(self.levels)
        ]
        self.edge_level: Dict[Tuple[Node, Node], int] = {}
        self.is_tree_edge: Dict[Tuple[Node, Node], bool] = {}
        # Per level: non-tree adjacency and tree adjacency.
        self.nontree_adj: List[Dict[Node, Set[Node]]] = [{} for _ in range(self.levels)]
        self.tree_adj: List[Dict[Node, Set[Node]]] = [{} for _ in range(self.levels)]

    # ------------------------------------------------------------------
    def add_vertex(self, v: Node) -> None:
        self.forests[0].add_vertex(v)

    def _ensure_level_vertex(self, level: int, v: Node) -> None:
        self.forests[level].add_vertex(v)

    def connected(self, u: Node, v: Node) -> bool:
        return self.forests[0].connected(u, v)

    def has_edge(self, u: Node, v: Node) -> bool:
        return _key(u, v) in self.edge_level

    # ------------------------------------------------------------------
    def insert(self, u: Node, v: Node) -> None:
        key = _key(u, v)
        if key in self.edge_level:
            raise GraphError(f"edge {key} already present")
        self.add_vertex(u)
        self.add_vertex(v)
        self.edge_level[key] = 0
        if not self.forests[0].connected(u, v):
            self.is_tree_edge[key] = True
            self._link_through(0, u, v)
        else:
            self.is_tree_edge[key] = False
            self.nontree_adj[0].setdefault(u, set()).add(v)
            self.nontree_adj[0].setdefault(v, set()).add(u)

    def _link_through(self, level: int, u: Node, v: Node) -> None:
        """Make {u, v} a tree edge of level ``level``: link F_0 … F_level."""
        for i in range(level + 1):
            self._ensure_level_vertex(i, u)
            self._ensure_level_vertex(i, v)
            self.forests[i].link(u, v)
            self.tree_adj[i].setdefault(u, set()).add(v)
            self.tree_adj[i].setdefault(v, set()).add(u)

    def _unlink_through(self, level: int, u: Node, v: Node) -> None:
        for i in range(level + 1):
            self.forests[i].cut(u, v)
            self.tree_adj[i][u].discard(v)
            self.tree_adj[i][v].discard(u)

    # ------------------------------------------------------------------
    def delete(self, u: Node, v: Node) -> None:
        key = _key(u, v)
        level = self.edge_level.pop(key, None)
        if level is None:
            raise GraphError(f"edge {key} not present")
        if not self.is_tree_edge.pop(key):
            self.nontree_adj[level][u].discard(v)
            self.nontree_adj[level][v].discard(u)
            return

        self._unlink_through(level, u, v)
        # Search for a replacement edge from `level` down to 0.
        for i in range(level, -1, -1):
            forest = self.forests[i]
            # The smaller side after the cut.
            if forest.tree_size(u) <= forest.tree_size(v):
                small_root = u
            else:
                small_root = v
            small_vertices = list(forest.tree_vertices(small_root))
            small_set = set(small_vertices)

            # Promote the smaller side's level-i tree edges to level i+1
            # (the amortization step of HDT).
            if i + 1 < self.levels:
                for x in small_vertices:
                    for y in list(self.tree_adj[i].get(x, ())):
                        if y in small_set and self.edge_level.get(_key(x, y)) == i:
                            self.edge_level[_key(x, y)] = i + 1
                            self._ensure_level_vertex(i + 1, x)
                            self._ensure_level_vertex(i + 1, y)
                            self.forests[i + 1].link(x, y)
                            self.tree_adj[i + 1].setdefault(x, set()).add(y)
                            self.tree_adj[i + 1].setdefault(y, set()).add(x)

            # Scan level-i non-tree edges incident to the smaller side.
            replacement: Optional[Tuple[Node, Node]] = None
            for x in small_vertices:
                for y in list(self.nontree_adj[i].get(x, ())):
                    if y in small_set:
                        # Internal edge: useless here, promote it.
                        if i + 1 < self.levels and self.edge_level.get(_key(x, y)) == i:
                            self.edge_level[_key(x, y)] = i + 1
                            self.nontree_adj[i][x].discard(y)
                            self.nontree_adj[i][y].discard(x)
                            self.nontree_adj[i + 1].setdefault(x, set()).add(y)
                            self.nontree_adj[i + 1].setdefault(y, set()).add(x)
                    else:
                        replacement = (x, y)
                        break
                if replacement is not None:
                    break
            if replacement is not None:
                x, y = replacement
                self.nontree_adj[i][x].discard(y)
                self.nontree_adj[i][y].discard(x)
                self.is_tree_edge[_key(x, y)] = True
                self._link_through(i, x, y)
                return
        # No replacement: the tree stays split (component count grew).


class DynCC(DynamicAlgorithm):
    """Fully dynamic connected components via HDT.

    Answers the paper's CC query — ``{node: component id}`` where the id
    is the minimum node id of the component — by labeling each spanning
    tree of ``F_0``.  Batch updates are processed one unit at a time (the
    behaviour Exp-2(1b) punishes).
    """

    name = "DynCC"

    def __init__(self, seed: Optional[int] = 12345) -> None:
        super().__init__()
        self._seed = seed
        self.hdt: HDTConnectivity = None

    def build(self, graph: Graph, query: Any = None) -> None:
        if graph.directed:
            raise GraphError("DynCC operates on undirected graphs")
        self.graph = graph
        self.query = query
        # Head-room for insertions: size the level hierarchy generously.
        self.hdt = HDTConnectivity(max_vertices=max(2, 2 * graph.num_nodes), seed=self._seed)
        for v in graph.nodes():
            self.hdt.add_vertex(v)
        for u, v in graph.edges():
            if u != v:
                self.hdt.insert(u, v)

    def apply(self, delta: Batch) -> None:
        self._require_built()
        for update in delta.expanded(self.graph):
            if isinstance(update, EdgeInsertion):
                u, v = update.u, update.v
                self.graph.add_edge(u, v, weight=update.weight)
                if u != v:
                    self.hdt.insert(u, v)
            elif isinstance(update, EdgeDeletion):
                u, v = update.u, update.v
                self.graph.remove_edge(u, v)
                if u != v:
                    self.hdt.delete(u, v)
            elif isinstance(update, VertexInsertion):
                self.graph.ensure_node(update.v, label=update.label)
                self.hdt.add_vertex(update.v)
            elif isinstance(update, VertexDeletion):
                if self.graph.has_node(update.v):
                    self.graph.remove_node(update.v)
                # Incident edges were expanded into explicit deletions;
                # the vertex simply remains isolated in the forest.

    def connected(self, u: Node, v: Node) -> bool:
        self._require_built()
        return self.hdt.connected(u, v)

    def answer(self) -> Dict[Node, Node]:
        """{node: component id}, component id = min node id (as CC_fp)."""
        self._require_built()
        result: Dict[Node, Node] = {}
        seen: Set[Node] = set()
        forest = self.hdt.forests[0]
        for v in self.graph.nodes():
            if v in seen:
                continue
            members = list(forest.tree_vertices(v)) if v in forest else [v]
            members = [m for m in members if self.graph.has_node(m)]
            label = min(members)
            for m in members:
                result[m] = label
                seen.add(m)
        return result
