"""DynLCC — streaming local clustering coefficients.

Reference [19] of the paper: D. Ediger, K. Jiang, E. J. Riedy,
D. A. Bader, *Massive streaming data analytics: A case study with
clustering coefficients* (IPDPS Workshops 2010).  Their exact variant
maintains per-vertex degree and triangle counters under an edge stream:
for an inserted (deleted) edge ``{u, v}`` the common neighborhood
``N(u) ∩ N(v)`` gives exactly the triangles created (destroyed), so

    ``λ_u += |C|``,  ``λ_v += |C|``,  ``λ_w += 1`` for each ``w ∈ C``.

DynLCC is a *stream* algorithm: it processes unit updates one at a time
and keeps only the counters — trading runtime for space, as the paper
notes when explaining its Figure 8 footprint.
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import GraphError
from ..graph.graph import Graph, Node
from ..graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    VertexDeletion,
    VertexInsertion,
)
from .base import DynamicAlgorithm


class DynLCC(DynamicAlgorithm):
    """Ediger et al. streaming clustering-coefficient maintenance."""

    name = "DynLCC"

    def __init__(self) -> None:
        super().__init__()
        self.degree: Dict[Node, int] = {}
        self.triangles: Dict[Node, int] = {}

    # ------------------------------------------------------------------
    def build(self, graph: Graph, query: Any = None) -> None:
        if graph.directed:
            raise GraphError("DynLCC operates on undirected graphs")
        self.graph = graph
        self.query = query
        self.degree = {}
        self.triangles = {v: 0 for v in graph.nodes()}
        for v in graph.nodes():
            self.degree[v] = sum(1 for w in graph.neighbors(v) if w != v)
        for u, v in graph.edges():
            if u == v:
                continue
            common = self._common_neighbors(u, v)
            # Sweeping all edges credits each triangle 3 times per vertex
            # (once from each of its edges), hence the //3 below.
            self.triangles[u] += len(common)
            self.triangles[v] += len(common)
            for w in common:
                self.triangles[w] += 1
        for v in self.triangles:
            self.triangles[v] //= 3

    def _common_neighbors(self, u: Node, v: Node):
        nu = {w for w in self.graph.neighbors(u) if w != u and w != v}
        return [w for w in self.graph.neighbors(v) if w != v and w != u and w in nu]

    # ------------------------------------------------------------------
    def answer(self) -> Dict[Node, float]:
        """{node: γ_v} from the maintained counters."""
        result: Dict[Node, float] = {}
        for v in self.graph.nodes():
            d = self.degree.get(v, 0)
            if d < 2:
                result[v] = 0.0
            else:
                result[v] = 2.0 * self.triangles.get(v, 0) / (d * (d - 1))
        return result

    # ------------------------------------------------------------------
    def apply(self, delta: Batch) -> None:
        """Stream ``ΔG`` one unit update at a time."""
        self._require_built()
        graph = self.graph
        for update in delta.expanded(graph):
            if isinstance(update, EdgeInsertion):
                u, v = update.u, update.v
                graph.add_edge(u, v, weight=update.weight)
                self.degree.setdefault(u, 0)
                self.degree.setdefault(v, 0)
                self.triangles.setdefault(u, 0)
                self.triangles.setdefault(v, 0)
                if u == v:
                    continue
                common = self._common_neighbors(u, v)
                self.degree[u] += 1
                self.degree[v] += 1
                self.triangles[u] += len(common)
                self.triangles[v] += len(common)
                for w in common:
                    self.triangles[w] += 1
            elif isinstance(update, EdgeDeletion):
                u, v = update.u, update.v
                if u != v:
                    common = self._common_neighbors(u, v)
                    self.degree[u] -= 1
                    self.degree[v] -= 1
                    self.triangles[u] -= len(common)
                    self.triangles[v] -= len(common)
                    for w in common:
                        self.triangles[w] -= 1
                graph.remove_edge(u, v)
            elif isinstance(update, VertexInsertion):
                graph.ensure_node(update.v, label=update.label)
                self.degree.setdefault(update.v, 0)
                self.triangles.setdefault(update.v, 0)
            elif isinstance(update, VertexDeletion):
                if graph.has_node(update.v):
                    graph.remove_node(update.v)
                self.degree.pop(update.v, None)
                self.triangles.pop(update.v, None)
