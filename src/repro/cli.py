"""Command-line interface.

Usage (also via ``python -m repro``):

    python -m repro stats GRAPH            # structural summary
    python -m repro run ALGO GRAPH         # batch answer
    python -m repro inc ALGO GRAPH UPDATES # batch + incremental maintenance
    python -m repro datasets               # list the proxy datasets
    python -m repro recover DIR            # rebuild a crashed session (sharded or plain)
    python -m repro audit DIR              # σ_A invariant audit (exit 1 if dirty)
    python -m repro serve GRAPH --shards N # sharded multi-process serving tier
    python -m repro bench run SUITE...     # record a benchmark run in the registry
    python -m repro bench report           # render trend tables -> docs/RESULTS.md
    python -m repro bench gate             # regression gate (exit 1 on breach)

``GRAPH`` is an edge-list file (``u v [weight]``), a labeled edge list
(autodetected via ``--labeled``), or a dataset name prefixed with ``@``
(e.g. ``@LJ``).  ``UPDATES`` is a text file of unit updates:

    + u v [weight]      edge insertion
    - u v               edge deletion
    +v x [label]        vertex insertion
    -v x                vertex deletion

Answers are printed as JSON on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional, Tuple

from .errors import ReproError
from .graph.analysis import graph_stats
from .graph.graph import Graph
from .graph.io import read_edge_list, read_labeled_edge_list
from .graph.temporal import TemporalGraph
from .graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    VertexDeletion,
    VertexInsertion,
)
from .session import ALGORITHM_PAIRS

_NEEDS_SOURCE = {"SSSP", "SSWP", "Reach"}
_UNDIRECTED_ONLY = {"CC", "LCC", "Coreness"}


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def load_graph(ref: str, directed: bool, labeled: bool) -> Graph:
    """Load a graph from a path or a ``@DATASET`` reference."""
    if ref.startswith("@"):
        from .datasets import load

        data = load(ref[1:], scale=1.0)
        if isinstance(data, TemporalGraph):
            first, last = data.time_span
            data = data.snapshot(last)
        return data
    if labeled:
        return read_labeled_edge_list(ref, directed=directed)
    return read_edge_list(ref, directed=directed)


def read_updates(path: str) -> Batch:
    """Parse the CLI update format into a :class:`Batch`."""
    batch = Batch()
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            op = parts[0]
            try:
                if op == "+" and len(parts) >= 3:
                    weight = float(parts[3]) if len(parts) > 3 else 1.0
                    batch.append(EdgeInsertion(_parse_node(parts[1]), _parse_node(parts[2]), weight=weight))
                elif op == "-" and len(parts) >= 3:
                    batch.append(EdgeDeletion(_parse_node(parts[1]), _parse_node(parts[2])))
                elif op == "+v" and len(parts) >= 2:
                    label = parts[2] if len(parts) > 2 else None
                    batch.append(VertexInsertion(_parse_node(parts[1]), label=label))
                elif op == "-v" and len(parts) >= 2:
                    batch.append(VertexDeletion(_parse_node(parts[1])))
                else:
                    raise ValueError(f"unrecognized update line: {line!r}")
            except (ValueError, IndexError) as exc:
                raise ReproError(f"{path}:{lineno}: {exc}") from None
    return batch


# The canonical JSON rendering of algorithm answers lives in the serving
# protocol (the wire format and the CLI must agree on it).
from .serve.protocol import jsonable as _jsonable  # noqa: E402


def _resolve(algo_name: str) -> Tuple[Any, Any]:
    for name, pair in ALGORITHM_PAIRS.items():
        if name.lower() == algo_name.lower():
            return name, pair
    raise ReproError(
        f"unknown algorithm {algo_name!r}; available: {', '.join(ALGORITHM_PAIRS)}"
    )


def _query_for(name: str, args, graph: Graph):
    if name in _NEEDS_SOURCE:
        if args.source is None:
            raise ReproError(f"{name} requires --source")
        source = _parse_node(args.source)
        if not graph.has_node(source):
            raise ReproError(f"source node {source!r} is not in the graph")
        return source
    if name == "Sim":
        if getattr(args, "pattern", None) is None:
            raise ReproError("Sim requires --pattern (a labeled edge-list file)")
        return read_labeled_edge_list(args.pattern, directed=True)
    return None


def cmd_stats(args) -> int:
    graph = load_graph(args.graph, directed=args.directed, labeled=args.labeled)
    print(json.dumps(graph_stats(graph).as_dict(), indent=2))
    return 0


def cmd_datasets(args) -> int:
    from .datasets import available, spec

    rows = []
    for name in available():
        s = spec(name)
        rows.append(
            {
                "name": s.name,
                "paper_dataset": s.paper_dataset,
                "directed": s.directed,
                "temporal": s.temporal,
                "description": s.description,
            }
        )
    print(json.dumps(rows, indent=2))
    return 0


def cmd_run(args) -> int:
    name, (batch_factory, _inc_factory) = _resolve(args.algorithm)
    directed = args.directed and name not in _UNDIRECTED_ONLY
    graph = load_graph(args.graph, directed=directed, labeled=args.labeled)
    query = _query_for(name, args, graph)
    algo = batch_factory()
    state = algo.run(graph, query)
    print(json.dumps(_jsonable(algo.answer(state, graph, query)), indent=2))
    return 0


def cmd_inc(args) -> int:
    name, (batch_factory, inc_factory) = _resolve(args.algorithm)
    directed = args.directed and name not in _UNDIRECTED_ONLY
    graph = load_graph(args.graph, directed=directed, labeled=args.labeled)
    query = _query_for(name, args, graph)
    delta = read_updates(args.updates)

    batch = batch_factory()
    state = batch.run(graph, query)
    result = inc_factory().apply(graph, state, delta, query)
    document = {
        "updates": delta.size,
        "changes": {str(k): [_jsonable(old), _jsonable(new)] for k, (old, new) in result.changes.items()},
        "answer": _jsonable(batch.answer(state, graph, query)),
    }
    print(json.dumps(document, indent=2))
    return 0


def cmd_recover(args) -> int:
    from pathlib import Path

    from .resilience import SHARDING_FILE
    from .session import DynamicGraphSession

    if (Path(args.directory) / SHARDING_FILE).exists():
        return _recover_sharded(args)
    session = DynamicGraphSession.recover(args.directory)
    document = {
        "queries": {
            name: {
                "algorithm": session._queries[name].algorithm,
                "quarantined": session._queries[name].quarantined,
            }
            for name in session.queries()
        },
        "batches_replayed": session.batches_applied,
        "graph": {"nodes": session.graph.num_nodes, "edges": session.graph.num_edges},
        "incidents": session.incidents.as_dicts(),
    }
    if args.audit:
        report = session.audit(full=args.full, heal=not args.no_heal)
        document["audit"] = report.as_dict()
    session.close()
    print(json.dumps(document, indent=2))
    return 0


def _recover_sharded(args) -> int:
    """Reassemble a sharded base directory (``sharding.json`` manifest).

    All shards recover or the command fails with a typed
    :class:`~repro.errors.ShardRecoveryError` — never a partial session.
    """
    from .parallel import ShardedSession

    if args.audit:
        raise ReproError(
            "--audit is not supported for sharded directories; the recovery "
            "full-resync already re-derives every value from the fragments"
        )
    session = ShardedSession.recover(args.directory)
    document = {
        "sharded": True,
        "num_shards": session.num_shards,
        "seq": session.seq,
        "queries": {
            name: {"algorithm": session._queries[name].algorithm}
            for name in session.queries()
        },
        "batches_replayed": session.batches_applied,
        "graph": {"nodes": session.graph.num_nodes, "edges": session.graph.num_edges},
        "incidents": session.incidents.as_dicts(),
    }
    session.close()
    print(json.dumps(document, indent=2))
    return 0


def cmd_audit(args) -> int:
    from .session import DynamicGraphSession

    session = DynamicGraphSession.recover(args.directory)
    report = session.audit(
        full=args.full,
        sample=args.sample,
        heal=not args.no_heal,
    )
    session.close()
    print(json.dumps(report.as_dict(), indent=2))
    return 0 if report.clean else 1


def _parse_register(spec: str) -> Tuple[str, str, Any]:
    """Parse one ``--register NAME=ALGO[:QUERY]`` specification."""
    name, eq, rest = spec.partition("=")
    if not eq or not name or not rest:
        raise ReproError(
            f"bad --register {spec!r}: expected NAME=ALGO or NAME=ALGO:QUERY"
        )
    algo, colon, query_token = rest.partition(":")
    canonical, _pair = _resolve(algo)
    if canonical in _NEEDS_SOURCE and not colon:
        raise ReproError(f"{canonical} requires a query: --register {name}={canonical}:SOURCE")
    if canonical == "Sim":
        raise ReproError("Sim needs a pattern graph; register it programmatically")
    query = _parse_node(query_token) if colon else None
    return name, canonical, query


def cmd_serve(args) -> int:
    from pathlib import Path

    from .resilience import SHARDING_FILE, SessionConfig
    from .serve import QueryService, ServiceConfig, serve_forever
    from .session import DynamicGraphSession

    registrations = [_parse_register(spec) for spec in (args.register or [])]
    shards = getattr(args, "shards", 1)
    if shards < 1:
        raise ReproError("--shards must be at least 1")
    if args.recover:
        if (Path(args.recover) / SHARDING_FILE).exists():
            from .parallel import ShardedSession

            session = ShardedSession.recover(args.recover, processes=True)
        else:
            session = DynamicGraphSession.recover(args.recover)
    else:
        if args.graph is None:
            raise ReproError("serve needs a GRAPH (or --recover DIR)")
        wants_undirected = {a for _n, a, _q in registrations if a in _UNDIRECTED_ONLY}
        if args.directed and wants_undirected:
            raise ReproError(
                f"{', '.join(sorted(wants_undirected))} only run on undirected "
                "graphs; drop --directed or those registrations"
            )
        graph = load_graph(args.graph, directed=args.directed, labeled=args.labeled)
        config = SessionConfig(directory=args.directory) if args.directory else None
        if shards > 1:
            # The sharded tier: one worker process per fragment, the
            # single-writer path (shards=1) stays on the plain session.
            from .parallel import ShardedSession

            session = ShardedSession(
                graph, shards, config=config, seed=args.shard_seed, processes=True
            )
        else:
            session = DynamicGraphSession(graph, config=config)

    service = QueryService(
        session,
        ServiceConfig(queue_size=args.queue_size, write_window=args.window),
    )
    try:
        for name, algorithm, query in registrations:
            service.register(name, algorithm, query=query)
    except ReproError:
        service.close(drain=False)
        raise
    service.start()
    serve_forever(service, args.host, args.port)
    return 0


def cmd_lint(args) -> int:
    from .lint import builtin_specs, lint_specs
    from .lint.rules import get as get_rule

    specs = builtin_specs()
    if args.spec:
        wanted = {s.lower() for s in args.spec}
        specs = [s for s in specs if s.name.lower() in wanted]
        known = {s.name.lower() for s in builtin_specs()}
        unknown = sorted(wanted - known)
        if unknown:
            names = ", ".join(s.name for s in builtin_specs())
            raise ReproError(f"unknown spec(s) {', '.join(unknown)}; available: {names}")
    try:
        disabled = [get_rule(ref).id for ref in args.disable or ()]
    except KeyError as exc:
        raise ReproError(str(exc.args[0])) from None

    report = lint_specs(specs, semantic=args.semantic, disabled=disabled, threads=args.threads)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text(verbose=args.verbose))
    return 0 if report.clean else 1


def _bench_registry(args):
    from pathlib import Path

    from .evalhub import Registry

    root = Path(args.results_dir) if getattr(args, "results_dir", None) else None
    return Registry(root=root)


def cmd_bench_run(args) -> int:
    from .evalhub import run_suite
    from .evalhub.suites import SUITES

    registry = _bench_registry(args)
    scale = "smoke" if args.smoke else args.scale
    unknown = [name for name in args.suites if name not in SUITES]
    if unknown:
        raise ReproError(
            f"unknown suite(s) {', '.join(unknown)}; available: {', '.join(sorted(SUITES))}"
        )
    for name in args.suites:
        print(f"running suite {name!r} at scale {scale!r} ...", flush=True)
        rows = run_suite(name, scale)
        record = registry.append(name, rows, tag=args.tag, scale=scale)
        print(
            f"recorded {name} run {record.run}"
            + (f" tag {record.tag!r}" if record.tag else "")
            + f" ({len(rows)} rows) -> {registry.path(name)}"
        )
    return 0


def cmd_bench_report(args) -> int:
    from pathlib import Path

    from .evalhub import generate_report, write_report
    from .evalhub.registry import repo_root

    registry = _bench_registry(args)
    suites = args.suite or None
    if args.stdout:
        print(generate_report(registry, suites))
        return 0
    if args.out:
        out = Path(args.out)
    else:
        root = repo_root()
        out = (root if root is not None else Path.cwd()) / "docs" / "RESULTS.md"
    write_report(out, registry, suites)
    print(f"wrote {out}")
    return 0


def cmd_bench_gate(args) -> int:
    from .evalhub import run_gates

    report = run_gates(
        registry=_bench_registry(args),
        path=args.config,
        suites=args.suite or None,
    )
    print(report.render_text())
    return 1 if report.failed else 0


def cmd_bench_suites(args) -> int:
    from .evalhub.suites import SCALES, SUITES

    print(f"scales: {', '.join(SCALES)}")
    for name in sorted(SUITES):
        print(f"{name:10s} {SUITES[name].description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Incrementalized graph algorithms (SIGMOD 2021 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_options(p):
        p.add_argument("graph", help="edge-list path or @DATASET")
        p.add_argument("--directed", action="store_true", help="treat the graph as directed")
        p.add_argument("--labeled", action="store_true", help="parse 'u ulabel v vlabel [w]' lines")

    p_stats = sub.add_parser("stats", help="print structural statistics")
    add_graph_options(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_datasets = sub.add_parser("datasets", help="list the proxy datasets")
    p_datasets.set_defaults(func=cmd_datasets)

    p_run = sub.add_parser("run", help="run a batch algorithm")
    p_run.add_argument("algorithm", help="|".join(ALGORITHM_PAIRS))
    add_graph_options(p_run)
    p_run.add_argument("--source", help="source node (SSSP/SSWP/Reach)")
    p_run.add_argument("--pattern", help="pattern file for Sim (labeled edge list)")
    p_run.set_defaults(func=cmd_run)

    p_inc = sub.add_parser("inc", help="run batch once, then apply updates incrementally")
    p_inc.add_argument("algorithm", help="|".join(ALGORITHM_PAIRS))
    add_graph_options(p_inc)
    p_inc.add_argument("updates", help="update file: '+ u v [w]' / '- u v' / '+v x' / '-v x'")
    p_inc.add_argument("--source", help="source node (SSSP/SSWP/Reach)")
    p_inc.add_argument("--pattern", help="pattern file for Sim (labeled edge list)")
    p_inc.set_defaults(func=cmd_inc)

    p_recover = sub.add_parser(
        "recover",
        help="rebuild a crashed session from its checkpoint + WAL",
        description=(
            "Load the last checkpoint in DIRECTORY, replay the WAL tail, "
            "write a fresh checkpoint, and print a JSON summary of the "
            "recovered session.  See docs/robustness.md."
        ),
    )
    p_recover.add_argument("directory", help="durable session directory")
    p_recover.add_argument(
        "--audit", action="store_true", help="audit the recovered states too"
    )
    p_recover.add_argument(
        "--full", action="store_true", help="with --audit: diff against fresh batch runs"
    )
    p_recover.add_argument(
        "--no-heal", action="store_true", help="with --audit: report divergence only"
    )
    p_recover.set_defaults(func=cmd_recover)

    p_audit = sub.add_parser(
        "audit",
        help="check a durable session's states against the σ_A invariant",
        description=(
            "Recover the session in DIRECTORY and verify every query's "
            "fixpoint state: a sampled σ_A probe by default, a full diff "
            "against fresh batch runs with --full.  Divergent states are "
            "self-healed by batch recomputation unless --no-heal.  Exits "
            "1 when any finding was reported."
        ),
    )
    p_audit.add_argument("directory", help="durable session directory")
    p_audit.add_argument("--full", action="store_true", help="diff against fresh batch runs")
    p_audit.add_argument(
        "--sample", type=int, default=None, help="variables sampled per query (default 32)"
    )
    p_audit.add_argument(
        "--no-heal", action="store_true", help="report divergence without recomputing"
    )
    p_audit.set_defaults(func=cmd_audit)

    p_serve = sub.add_parser(
        "serve",
        help="serve standing incremental queries over TCP (JSON lines)",
        description=(
            "Start the concurrent query service: a single writer thread "
            "maintains the registered incremental queries while clients "
            "read snapshot-isolated answers, stream updates, and long-poll "
            "for changes.  See docs/serving.md for the protocol, the "
            "isolation model, and the overload behaviour."
        ),
    )
    p_serve.add_argument(
        "graph", nargs="?", default=None, help="edge-list path or @DATASET (omit with --recover)"
    )
    p_serve.add_argument("--directed", action="store_true", help="treat the graph as directed")
    p_serve.add_argument("--labeled", action="store_true", help="parse 'u ulabel v vlabel [w]' lines")
    p_serve.add_argument(
        "--recover",
        metavar="DIR",
        default=None,
        help="recover a durable session directory instead of loading GRAPH",
    )
    p_serve.add_argument(
        "--directory",
        metavar="DIR",
        default=None,
        help="make the session durable (WAL + checkpoints) in DIR",
    )
    p_serve.add_argument(
        "--register",
        action="append",
        metavar="NAME=ALGO[:QUERY]",
        help="register a standing query (repeatable), e.g. cc=CC or d0=SSSP:0",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=7227, help="bind port (0 = ephemeral)")
    p_serve.add_argument(
        "--queue-size", type=int, default=256, help="admission queue bound (Overloaded beyond it)"
    )
    p_serve.add_argument(
        "--window", type=int, default=32, help="max update batches coalesced per writer window"
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="shard the session across N worker processes with boundary-delta "
        "exchange (1 = the plain single-writer session)",
    )
    p_serve.add_argument(
        "--shard-seed",
        type=int,
        default=0,
        help="partitioning seed for --shards (must match across restarts)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="verify FixpointSpec contracts (C1/C2, anchors, push-mode)",
        description=(
            "Check every built-in fixpoint spec against the framework's "
            "applicability conditions: a structural pass over the spec "
            "source (purity, declared reads, capability flags) and — with "
            "--semantic — an executed contract pass on small seeded "
            "workloads (contraction, monotonicity, anchor soundness, "
            "H0 ⊆ AFF, incremental/batch agreement).  Exits 1 when an "
            "unsuppressed error finding remains."
        ),
    )
    p_lint.add_argument(
        "--spec",
        action="append",
        metavar="NAME",
        help="lint only this spec (repeatable); default: all built-ins",
    )
    p_lint.add_argument(
        "--semantic",
        action="store_true",
        help="also run the executed contract checks (slower)",
    )
    p_lint.add_argument(
        "--threads",
        action="store_true",
        help="also run the whole-program concurrency pass (T-rules) over "
        "the library source: single-writer reachability, snapshot "
        "escapes, lock discipline, WAL ordering",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    p_lint.add_argument(
        "--disable",
        action="append",
        metavar="RULE",
        help="suppress a rule by id or name (repeatable), e.g. S006 or "
        "nondeterministic-update",
    )
    p_lint.add_argument(
        "--verbose", action="store_true", help="show suppressed findings too"
    )
    p_lint.set_defaults(func=cmd_lint)

    p_bench = sub.add_parser(
        "bench",
        help="run, report, and gate recorded benchmark suites",
        description=(
            "The evaluation hub: execute a registered suite and append a "
            "tagged run to the registry under benchmarks/results/, render "
            "the recorded trajectory as markdown trend tables, or compare "
            "the latest run against the last comparable baseline under the "
            "tolerances in benchmarks/gates.toml.  See docs/evaluation.md."
        ),
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    def add_registry_option(p):
        p.add_argument(
            "--results-dir",
            metavar="DIR",
            default=None,
            help="registry root (default: <checkout>/benchmarks/results, "
            "or $REPRO_RESULTS_DIR)",
        )

    p_brun = bench_sub.add_parser(
        "run", help="execute suites and append a tagged run to the registry"
    )
    p_brun.add_argument("suites", nargs="+", metavar="SUITE", help="suite names (see `bench suites`)")
    p_brun.add_argument(
        "--scale", choices=("smoke", "small", "full"), default="small", help="suite scale"
    )
    p_brun.add_argument(
        "--smoke", action="store_true", help="shorthand for --scale smoke (CI gate mode)"
    )
    p_brun.add_argument("--tag", default=None, help="run tag (unique per suite)")
    add_registry_option(p_brun)
    p_brun.set_defaults(func=cmd_bench_run)

    p_breport = bench_sub.add_parser(
        "report", help="render registry trend tables as markdown"
    )
    p_breport.add_argument(
        "--suite", action="append", metavar="NAME", help="restrict to a suite (repeatable)"
    )
    p_breport.add_argument(
        "--out", metavar="PATH", default=None, help="output file (default docs/RESULTS.md)"
    )
    p_breport.add_argument(
        "--stdout", action="store_true", help="print the report instead of writing a file"
    )
    add_registry_option(p_breport)
    p_breport.set_defaults(func=cmd_bench_report)

    p_bgate = bench_sub.add_parser(
        "gate", help="check the latest runs against the declared tolerances"
    )
    p_bgate.add_argument(
        "--suite", action="append", metavar="NAME", help="restrict to a suite (repeatable)"
    )
    p_bgate.add_argument(
        "--config", metavar="PATH", default=None, help="gate config (default benchmarks/gates.toml)"
    )
    add_registry_option(p_bgate)
    p_bgate.set_defaults(func=cmd_bench_gate)

    p_bsuites = bench_sub.add_parser("suites", help="list the suite catalog")
    p_bsuites.set_defaults(func=cmd_bench_suites)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        # OSError covers the filesystem-shaped failures (missing files,
        # a checkpoint path that is a directory, permission errors):
        # operator mistakes deserve one line on stderr, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
