"""Thread-safe latency recording and queue-depth gauges for the serving
layer (:mod:`repro.serve`).

Wall-clock percentiles are the service-level cost measure the paper's
data-access counters cannot provide: a standing-query service is judged
on tail latency under load, not on touched-variable counts.  The
recorders here are deliberately tiny — a bounded sample ring behind a
lock — so the writer thread and every reader connection can record into
them from hot paths.

Percentiles are computed over the *retained* samples (the most recent
``capacity``); with the default capacity of 8192 that is exact for any
benchmark window this repo runs, and a recent-biased estimate beyond it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional


class LatencyRecorder:
    """Bounded ring of latency samples with percentile snapshots.

    >>> rec = LatencyRecorder()
    >>> for ms in (1.0, 2.0, 3.0, 4.0):
    ...     rec.record(ms / 1000.0)
    >>> rec.count
    4
    >>> rec.percentile(0.5) <= rec.percentile(0.99)
    True
    """

    def __init__(self, capacity: int = 8192) -> None:
        self._samples: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._count = 0  # lifetime recordings, survives window resets
        self._window_count = 0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._window_count += 1

    @property
    def count(self) -> int:
        """Lifetime number of samples recorded (not capped by capacity)."""
        with self._lock:
            return self._count

    def percentile(self, p: float) -> float:
        """The ``p`` quantile (0..1) of retained samples; 0.0 when empty."""
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return 0.0
        index = min(len(data) - 1, max(0, int(p * (len(data) - 1) + 0.5)))
        return data[index]

    def snapshot(self, reset: bool = False) -> Dict[str, float]:
        """Percentile summary ``{count, window, p50, p90, p99, max, mean}``.

        ``reset=True`` starts a fresh *window* (the per-window counter the
        serve ``stats`` endpoint reports) while keeping the sample ring,
        so percentiles stay warm across windows.
        """
        with self._lock:
            data = sorted(self._samples)
            count = self._count
            window = self._window_count
            if reset:
                self._window_count = 0

        def pct(p: float) -> float:
            if not data:
                return 0.0
            return data[min(len(data) - 1, max(0, int(p * (len(data) - 1) + 0.5)))]

        return {
            "count": count,
            "window": window,
            "p50": pct(0.50),
            "p90": pct(0.90),
            "p99": pct(0.99),
            "max": data[-1] if data else 0.0,
            "mean": (sum(data) / len(data)) if data else 0.0,
        }


def percentiles(samples: Iterable[float], points: Iterable[float] = (0.5, 0.9, 0.99)) -> Dict[str, float]:
    """One-shot percentile summary of a raw sample list (loadgen reports)."""
    data: List[float] = sorted(samples)
    out: Dict[str, float] = {"count": len(data)}
    for p in points:
        key = f"p{int(p * 100)}"
        if not data:
            out[key] = 0.0
        else:
            out[key] = data[min(len(data) - 1, max(0, int(p * (len(data) - 1) + 0.5)))]
    out["max"] = data[-1] if data else 0.0
    out["mean"] = (sum(data) / len(data)) if data else 0.0
    return out


class DepthGauge:
    """A high-water-marking gauge for queue depths.

    The writer queue's instantaneous depth is sampled at admission; the
    high-water mark is the congestion evidence ``stats`` surfaces (and
    resets per window).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0
        self._high_water = 0

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value
            if value > self._high_water:
                self._high_water = value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self, reset: bool = False) -> Dict[str, int]:
        with self._lock:
            snap = {"depth": self._value, "high_water": self._high_water}
            if reset:
                self._high_water = self._value
        return snap
