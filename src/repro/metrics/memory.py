"""Memory-footprint estimation (Exp-4 of the paper).

The paper's Figure 8 compares the memory usage of the deduced
incremental algorithms with their batch counterparts and the fine-tuned
dynamic baselines.  Python has no ``sizeof`` on object graphs, so
:func:`deep_size_bytes` walks containers with ``sys.getsizeof``,
deduplicating shared objects by id — good enough to reproduce *relative*
space costs (deducible ≈ batch; weakly deducible ≈ batch + timestamps;
some baselines trade space for time).
"""

from __future__ import annotations

import sys
from typing import Any, Set


def deep_size_bytes(obj: Any, _seen: Set[int] = None) -> int:
    """Recursive ``sys.getsizeof`` over containers, deduplicated by id.

    Follows dicts, lists, tuples, sets, and objects with ``__dict__`` or
    ``__slots__``.  Interned immutables are still counted once each, which
    slightly overestimates but does so uniformly across algorithms.
    """
    if _seen is None:
        _seen = set()
    oid = id(obj)
    if oid in _seen:
        return 0
    _seen.add(oid)

    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_size_bytes(key, _seen)
            size += deep_size_bytes(value, _seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_size_bytes(item, _seen)
    else:
        attrs = getattr(obj, "__dict__", None)
        if attrs is not None:
            size += deep_size_bytes(attrs, _seen)
        slots = getattr(type(obj), "__slots__", ())
        for slot in slots:
            if hasattr(obj, slot):
                size += deep_size_bytes(getattr(obj, slot), _seen)
    return size


def state_size_bytes(state: Any) -> int:
    """Footprint of a fixpoint state (values + timestamps)."""
    return deep_size_bytes(state)
