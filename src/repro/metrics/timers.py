"""Wall-clock helpers for the benchmark harness."""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple


class Stopwatch:
    """A context-manager stopwatch.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``fn`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
