"""Data-access instrumentation.

Relative boundedness (Section 2 of the paper) is a statement about *the
size of the data inspected* by an incremental algorithm — not about wall
clock.  Pure-Python wall-clock times carry large constant factors, so this
library measures the bounded quantity directly: every read, write, and
evaluation of a status variable performed by the fixpoint engine and by
the initial scope function is counted by an :class:`AccessCounter`.

Counters can also *trace* the set of variables touched, which is how
:mod:`repro.core.boundedness` checks ``H⁰ ⊆ AFF`` empirically.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set


class AccessCounter:
    """Counts status-variable accesses; optionally records which ones.

    Attributes
    ----------
    reads / writes / evals:
        Number of variable reads, variable writes, and update-function
        invocations.
    scope_pushes:
        Number of insertions into the work scope ``H``.
    traced:
        When created with ``trace=True``, the set of variable keys touched
        in any way.
    """

    __slots__ = ("reads", "writes", "evals", "scope_pushes", "traced", "_trace")

    def __init__(self, trace: bool = False) -> None:
        self.reads = 0
        self.writes = 0
        self.evals = 0
        self.scope_pushes = 0
        self._trace = trace
        self.traced: Optional[Set[Hashable]] = set() if trace else None

    # The four event kinds, kept tiny: they run inside inner loops.
    def on_read(self, key: Hashable) -> None:
        self.reads += 1
        if self._trace:
            self.traced.add(key)

    def on_write(self, key: Hashable) -> None:
        self.writes += 1
        if self._trace:
            self.traced.add(key)

    def on_eval(self, key: Hashable) -> None:
        self.evals += 1
        if self._trace:
            self.traced.add(key)

    def on_scope_push(self, key: Hashable) -> None:
        self.scope_pushes += 1
        if self._trace:
            self.traced.add(key)

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Total data items inspected — the paper's cost measure."""
        return self.reads + self.writes + self.evals + self.scope_pushes

    def reset(self) -> None:
        self.reads = self.writes = self.evals = self.scope_pushes = 0
        if self._trace:
            self.traced = set()

    def merge(self, other: "AccessCounter") -> None:
        """Accumulate another counter into this one."""
        self.reads += other.reads
        self.writes += other.writes
        self.evals += other.evals
        self.scope_pushes += other.scope_pushes
        if self._trace and other.traced is not None:
            self.traced.update(other.traced)

    def as_dict(self) -> Dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "evals": self.evals,
            "scope_pushes": self.scope_pushes,
            "total": self.total,
        }

    def __repr__(self) -> str:
        return (
            f"AccessCounter(reads={self.reads}, writes={self.writes}, "
            f"evals={self.evals}, scope_pushes={self.scope_pushes})"
        )


class NullCounter(AccessCounter):
    """A counter that ignores every event — zero-overhead-ish default."""

    __slots__ = ()

    def on_read(self, key: Hashable) -> None:  # noqa: D102
        pass

    def on_write(self, key: Hashable) -> None:  # noqa: D102
        pass

    def on_eval(self, key: Hashable) -> None:  # noqa: D102
        pass

    def on_scope_push(self, key: Hashable) -> None:  # noqa: D102
        pass
