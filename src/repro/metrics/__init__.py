"""Instrumentation: data-access counters, memory estimation, timing,
and the thread-safe latency/queue-depth recorders the serving layer
(:mod:`repro.serve`) reports through its ``stats`` endpoint."""

from .counters import AccessCounter, NullCounter
from .latency import DepthGauge, LatencyRecorder, percentiles
from .memory import deep_size_bytes, state_size_bytes
from .timers import Stopwatch, time_call

__all__ = [
    "AccessCounter",
    "DepthGauge",
    "LatencyRecorder",
    "NullCounter",
    "Stopwatch",
    "deep_size_bytes",
    "percentiles",
    "state_size_bytes",
    "time_call",
]
