"""Instrumentation: data-access counters, memory estimation, timing."""

from .counters import AccessCounter, NullCounter
from .memory import deep_size_bytes, state_size_bytes
from .timers import Stopwatch, time_call

__all__ = [
    "AccessCounter",
    "NullCounter",
    "Stopwatch",
    "deep_size_bytes",
    "state_size_bytes",
    "time_call",
]
