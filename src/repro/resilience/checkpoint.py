"""Atomic session checkpoints: graph + every query's fixpoint state.

A checkpoint is one JSON document capturing everything
:meth:`DynamicGraphSession.recover <repro.session.DynamicGraphSession.recover>`
needs to rebuild a session without re-running any batch algorithm:

* the reference graph (nodes, labels, edges, weights, directedness);
* per registered query: its name, algorithm-pair name, query object
  (a node id, ``None``, or a pattern :class:`~repro.graph.graph.Graph`
  for Sim), quarantine flag, and its :class:`FixpointState` — embedded
  via the existing persistence format
  (:func:`repro.core.persistence.dump_state`), so timestamps of the
  weakly deducible algorithms survive;
* the WAL sequence number the checkpoint is consistent with — recovery
  replays only WAL records *after* it.

Writes go to a temp file in the same directory followed by
``os.replace``, so a crash mid-checkpoint (the ``checkpoint.mid-write``
fault site) leaves the previous checkpoint intact and recovery simply
replays a longer WAL tail.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.persistence import _decode, _encode, dump_state, load_state
from ..core.state import FixpointState
from ..errors import RecoveryError, ReproError
from ..graph.graph import Graph
from .faults import inject

PathLike = Union[str, Path]

_CHECKPOINT_VERSION = 1

CHECKPOINT_FILE = "checkpoint.json"
WAL_FILE = "wal.jsonl"
#: Manifest marking a *sharded* session directory (see repro.parallel);
#: plain-session recovery refuses directories holding one.
SHARDING_FILE = "sharding.json"


# ----------------------------------------------------------------------
# Graph and query (de)serialization
# ----------------------------------------------------------------------
def graph_to_doc(graph: Graph) -> Dict[str, Any]:
    """A JSON-safe document for a whole graph, labels and weights included."""
    nodes = []
    for v in graph.nodes():
        label = graph.node_label(v)
        nodes.append([_encode(v), _encode(label)])
    edges = []
    for u, v in graph.edges():
        edges.append(
            [
                _encode(u),
                _encode(v),
                _encode(float(graph.weight(u, v))),
                _encode(graph.edge_label(u, v)),
            ]
        )
    return {"directed": graph.directed, "nodes": nodes, "edges": edges}


def graph_from_doc(doc: Dict[str, Any]) -> Graph:
    """Inverse of :func:`graph_to_doc`."""
    graph = Graph(directed=bool(doc["directed"]))
    for raw_node, raw_label in doc["nodes"]:
        graph.ensure_node(_decode(raw_node), label=_decode(raw_label))
    for raw_u, raw_v, raw_w, raw_label in doc["edges"]:
        graph.add_edge(
            _decode(raw_u), _decode(raw_v), weight=_decode(raw_w), label=_decode(raw_label)
        )
    return graph


def query_to_doc(query: Any) -> Dict[str, Any]:
    """Encode a query object: a hashable key or a pattern graph (Sim)."""
    if isinstance(query, Graph):
        return {"graph": graph_to_doc(query)}
    return {"key": _encode(query)}


def query_from_doc(doc: Dict[str, Any]) -> Any:
    if "graph" in doc:
        return graph_from_doc(doc["graph"])
    return _decode(doc["key"])


def _state_to_doc(state: FixpointState) -> Dict[str, Any]:
    buffer = io.StringIO()
    dump_state(state, buffer)
    return json.loads(buffer.getvalue())


def _state_from_doc(doc: Dict[str, Any]) -> FixpointState:
    return load_state(io.StringIO(json.dumps(doc)))


# ----------------------------------------------------------------------
# Checkpoint write / load
# ----------------------------------------------------------------------
def write_checkpoint(directory: PathLike, graph: Graph, queries, seq: int) -> Path:
    """Atomically persist the session snapshot; returns the checkpoint path.

    ``queries`` is an iterable of ``RegisteredQuery``-shaped objects
    (``name`` / ``algorithm`` / ``query`` / ``state`` / ``quarantined``).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    doc = {
        "version": _CHECKPOINT_VERSION,
        "seq": seq,
        "graph": graph_to_doc(graph),
        "queries": [
            {
                "name": registered.name,
                "algorithm": registered.algorithm,
                "query": query_to_doc(registered.query),
                "quarantined": bool(getattr(registered, "quarantined", False)),
                "state": _state_to_doc(registered.state),
            }
            for registered in queries
        ],
    }
    target = directory / CHECKPOINT_FILE
    temp = directory / (CHECKPOINT_FILE + ".tmp")
    with open(temp, "w") as f:
        json.dump(doc, f)
        f.flush()
        os.fsync(f.fileno())
    inject("checkpoint.mid-write")
    os.replace(temp, target)
    return target


def load_checkpoint(directory: PathLike) -> Dict[str, Any]:
    """Load and decode a checkpoint document.

    Returns ``{"seq", "graph": Graph, "queries": [...]}`` with each query
    entry carrying a decoded ``query`` object and ``state``.
    """
    directory = Path(directory)
    path = directory / CHECKPOINT_FILE
    if not path.exists():
        raise RecoveryError(
            f"no checkpoint at {path}; a session must be created with a "
            "durable directory before it can be recovered"
        )
    try:
        with open(path) as f:
            doc = json.load(f)
    except ValueError as exc:
        raise RecoveryError(f"corrupt checkpoint {path}: {exc}") from None
    if doc.get("version") != _CHECKPOINT_VERSION:
        raise RecoveryError(
            f"unsupported checkpoint version {doc.get('version')!r}; this "
            f"build reads version {_CHECKPOINT_VERSION}"
        )
    try:
        return {
            "seq": doc["seq"],
            "graph": graph_from_doc(doc["graph"]),
            "queries": [
                {
                    "name": q["name"],
                    "algorithm": q["algorithm"],
                    "query": query_from_doc(q["query"]),
                    "quarantined": bool(q.get("quarantined", False)),
                    "state": _state_from_doc(q["state"]),
                }
                for q in doc["queries"]
            ],
        }
    except (KeyError, TypeError, ReproError) as exc:
        raise RecoveryError(f"malformed checkpoint {path}: {exc!r}") from None
