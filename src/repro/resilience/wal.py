"""Write-ahead logging of update batches.

A durable session appends every validated batch to a JSON-lines log
*before* mutating any state, so a crash at any later point loses
nothing: recovery replays the WAL tail onto the last checkpoint
(:mod:`repro.resilience.checkpoint`) and arrives at exactly the fixpoint
a from-scratch batch run on the final graph would produce (Lemma 2 —
the replayed incremental applies converge to the same fixpoints).

Record format — one JSON object per line:

* ``{"v": 1, "seq": n, "ops": [...]}`` — a batch, in apply order;
* ``{"v": 1, "abort": n}`` — batch ``n`` was rolled back after its
  append (a transactional failure with the session still alive);
  recovery must skip it.

Update encoding reuses the persistence module's value encoder, so node
ids and labels may be anything :func:`repro.core.persistence._encode`
accepts (ints, floats incl. non-finite, strings, bools, ``None``,
nested tuples).

Torn tails are expected, not fatal: a crash mid-append leaves a final
line that is not valid JSON (the ``wal.mid-append`` fault site tears a
record deterministically for the tests).  :meth:`WriteAheadLog.replay`
drops a malformed *final* line and reports it; a malformed line in the
middle of the log — silent corruption, not a torn write — raises
:class:`~repro.errors.RecoveryError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Tuple, Union

from ..core.persistence import _decode, _encode
from ..errors import RecoveryError, ReproError
from ..graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from .faults import inject

PathLike = Union[str, Path]

_WAL_VERSION = 1


def encode_update(update: Update) -> Dict[str, Any]:
    """One unit update as a JSON-safe dict."""
    if isinstance(update, EdgeInsertion):
        return {
            "op": "+e",
            "u": _encode(update.u),
            "v": _encode(update.v),
            "w": _encode(float(update.weight)),
            "l": _encode(update.label),
        }
    if isinstance(update, EdgeDeletion):
        return {"op": "-e", "u": _encode(update.u), "v": _encode(update.v)}
    if isinstance(update, VertexInsertion):
        return {
            "op": "+v",
            "v": _encode(update.v),
            "l": _encode(update.label),
            "edges": [encode_update(e) for e in update.edges],
        }
    if isinstance(update, VertexDeletion):
        return {"op": "-v", "v": _encode(update.v)}
    raise ReproError(f"cannot log update of type {type(update).__name__}")


def decode_update(doc: Dict[str, Any]) -> Update:
    """Inverse of :func:`encode_update`."""
    op = doc.get("op")
    if op == "+e":
        return EdgeInsertion(
            _decode(doc["u"]), _decode(doc["v"]), weight=_decode(doc["w"]), label=_decode(doc["l"])
        )
    if op == "-e":
        return EdgeDeletion(_decode(doc["u"]), _decode(doc["v"]))
    if op == "+v":
        return VertexInsertion(
            _decode(doc["v"]),
            label=_decode(doc["l"]),
            edges=tuple(decode_update(e) for e in doc.get("edges", ())),
        )
    if op == "-v":
        return VertexDeletion(_decode(doc["v"]))
    raise RecoveryError(f"unknown WAL op {op!r}")


def encode_batch(delta: Batch) -> List[Dict[str, Any]]:
    return [encode_update(u) for u in delta]


def decode_batch(ops: List[Dict[str, Any]]) -> Batch:
    return Batch([decode_update(doc) for doc in ops])


class WriteAheadLog:
    """Append-only JSON-lines log of update batches."""

    def __init__(self, path: PathLike, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._file: Optional[IO[str]] = open(self.path, "a")

    # ------------------------------------------------------------------
    def _write_record(self, payload: str) -> None:
        if self._file is None:
            raise ReproError(f"WAL {self.path} is closed")
        # The record is written in two halves with a fault site between
        # them, so tests can tear a write exactly where a crash would;
        # the first half is flushed so the tear is visible on disk.
        half = len(payload) // 2
        self._file.write(payload[:half])
        self._file.flush()
        inject("wal.mid-append")
        self._file.write(payload[half:] + "\n")
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    def append(self, seq: int, delta: Batch) -> None:
        """Durably record batch ``seq`` before it is applied anywhere."""
        self._write_record(
            json.dumps({"v": _WAL_VERSION, "seq": seq, "ops": encode_batch(delta)})
        )

    def abort(self, seq: int) -> None:
        """Record that batch ``seq`` was rolled back; replay must skip it."""
        self._write_record(json.dumps({"v": _WAL_VERSION, "abort": seq}))

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------
    @classmethod
    def replay(
        cls, path: PathLike, after_seq: int = -1
    ) -> Tuple[List[Tuple[int, Batch]], bool]:
        """Read back the batches with ``seq > after_seq``, in order.

        Returns ``(entries, torn_tail)``: aborted sequence numbers are
        skipped, and a malformed final line — the signature of a crash
        mid-append — is dropped with ``torn_tail = True``.  Malformed
        non-final lines raise :class:`~repro.errors.RecoveryError`.
        """
        path = Path(path)
        if not path.exists():
            return [], False
        raw_lines = path.read_text().split("\n")
        if raw_lines and raw_lines[-1] == "":
            raw_lines.pop()
        records: List[Dict[str, Any]] = []
        torn = False
        for lineno, line in enumerate(raw_lines):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
                if not isinstance(doc, dict) or doc.get("v") != _WAL_VERSION:
                    raise ValueError(f"unsupported WAL record version {doc!r}")
            except ValueError as exc:
                if lineno == len(raw_lines) - 1:
                    torn = True
                    break
                raise RecoveryError(
                    f"{path}:{lineno + 1}: corrupt WAL record ({exc})"
                ) from None
            records.append(doc)
        aborted = {doc["abort"] for doc in records if "abort" in doc}
        entries: List[Tuple[int, Batch]] = []
        for doc in records:
            if "abort" in doc:
                continue
            seq = doc.get("seq")
            if not isinstance(seq, int):
                raise RecoveryError(f"{path}: WAL record without a seq: {doc!r}")
            if seq <= after_seq or seq in aborted:
                continue
            entries.append((seq, decode_batch(doc["ops"])))
        entries.sort(key=lambda pair: pair[0])
        return entries, torn

    @classmethod
    def last_seq(cls, path: PathLike) -> int:
        """The highest sequence number recorded (appended or aborted)."""
        path = Path(path)
        if not path.exists():
            return -1
        best = -1
        for line in path.read_text().split("\n"):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue  # torn tail
            seq = doc.get("seq", doc.get("abort"))
            if isinstance(seq, int) and seq > best:
                best = seq
        return best

    def __repr__(self) -> str:
        return f"WriteAheadLog({str(self.path)!r})"
