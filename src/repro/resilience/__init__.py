"""Fault tolerance for continuous-query sessions.

The paper's deployment story — register standing queries once, stream
``ΔG`` batches for days — only works if the session survives the things
long-running services actually hit: malformed batches, crashes mid-apply,
runaway drains, and silent state corruption.  This package supplies the
four defenses :class:`~repro.session.DynamicGraphSession` weaves in:

* :mod:`~repro.resilience.validate` — up-front batch validation: typed
  errors (:class:`~repro.errors.BatchValidationError` and friends)
  raised **before** any replica mutates;
* :mod:`~repro.resilience.transactions` — pre-batch snapshots so a
  mid-apply failure rolls every replica back to a consistent state;
* :mod:`~repro.resilience.wal` + :mod:`~repro.resilience.checkpoint` —
  durability: append-before-apply logging and atomic checkpoints, so
  ``DynamicGraphSession.recover(dir)`` rebuilds a crashed session and
  replays the WAL tail;
* :mod:`~repro.resilience.audit` — runtime σ_A invariant probes, with
  quarantine + batch-recompute self-healing on divergence.

:mod:`~repro.resilience.faults` provides the deterministic
fault-injection sites the crash-recovery test-suite drives (and the
``REPRO_FAULTS`` environment hook for CI smoke runs);
:mod:`~repro.resilience.sanitizer` is the dynamic thread-sanitizer
cross-checking the static concurrency lint (``REPRO_TSAN=on``);
:mod:`~repro.resilience.incidents` is the structured log every defense
reports into.

See ``docs/robustness.md`` for the fault model and degradation matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

# faults first: it is the leaf module every other resilience (and core)
# module imports, and importing it installs any REPRO_FAULTS env plan.
from .faults import FaultPlan, InjectedFault, KNOWN_SITES, active_plan, inject, injected, install
from .audit import AuditFinding, AuditReport, QueryAudit, full_audit, sigma_audit
from .checkpoint import (
    CHECKPOINT_FILE,
    SHARDING_FILE,
    WAL_FILE,
    load_checkpoint,
    write_checkpoint,
)
from .incidents import Incident, IncidentLog
from .sanitizer import (
    SanitizerViolation,
    apply_starting,
    claim_owner,
    guarded_mutation,
    owner_of,
    publish_region,
    release_owner,
    wal_logged,
)
from .transactions import SessionTransaction, restore_graph_inplace, restore_state_inplace
from .validate import (
    NONNEGATIVE_WEIGHT_ALGORITHMS,
    WEIGHT_POLICIES,
    session_weight_requirements,
    validate_batch,
)
from .wal import WriteAheadLog, decode_batch, encode_batch


@dataclass
class SessionConfig:
    """Tunable resilience behaviour of a :class:`DynamicGraphSession`.

    The defaults are the safe-but-cheap middle ground: validation and
    transactional rollback on (they cost O(|ΔG|) and O(|G|) per batch
    respectively), durability and audits off until given a directory /
    cadence.  ``docs/robustness.md`` discusses each knob.
    """

    #: Durable directory for the WAL + checkpoints; ``None`` = in-memory
    #: session (no durability, :meth:`recover` impossible).
    directory: Optional[Union[str, Path]] = None
    #: Checkpoint after every N applied batches (0 = only on register /
    #: close; ignored without a directory).
    checkpoint_every: int = 16
    #: Run a sampled σ_A audit every N applied batches (0 = only on demand).
    audit_every: int = 0
    #: Variables sampled per query per audit (``None`` = all of them).
    audit_sample: Optional[int] = 32
    #: Snapshot replicas before each batch and roll back on failure.
    transactional: bool = True
    #: Weight validation: "any", "finite", or "spec" (per-algorithm
    #: requirements, e.g. no negative weights while SSSP is registered).
    weight_policy: str = "finite"
    #: Abort a query's incremental apply after this many update-function
    #: evaluations (``None`` = unbounded).  Guards non-terminating drains.
    step_budget: Optional[int] = None
    #: Quarantine a query after this many consecutive failed applies.
    quarantine_after: int = 3
    #: Ring-buffer capacity of the session's :class:`IncidentLog`.
    max_incidents: int = 256
    #: fsync WAL appends (durable against power loss, slower).
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.weight_policy not in WEIGHT_POLICIES:
            raise ValueError(
                f"weight_policy must be one of {WEIGHT_POLICIES}, got {self.weight_policy!r}"
            )


__all__ = [
    "AuditFinding",
    "AuditReport",
    "CHECKPOINT_FILE",
    "FaultPlan",
    "Incident",
    "IncidentLog",
    "InjectedFault",
    "KNOWN_SITES",
    "NONNEGATIVE_WEIGHT_ALGORITHMS",
    "QueryAudit",
    "SHARDING_FILE",
    "SessionConfig",
    "SessionTransaction",
    "WAL_FILE",
    "WEIGHT_POLICIES",
    "WriteAheadLog",
    "active_plan",
    "decode_batch",
    "encode_batch",
    "full_audit",
    "inject",
    "injected",
    "install",
    "load_checkpoint",
    "restore_graph_inplace",
    "restore_state_inplace",
    "session_weight_requirements",
    "sigma_audit",
    "validate_batch",
    "write_checkpoint",
]
