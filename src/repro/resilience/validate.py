"""Up-front validation of update batches (the transactional gate).

A malformed batch used to fail *inside* the first query's incremental
apply — after that query's replica had already mutated — leaving the
session torn.  :func:`validate_batch` simulates the batch against the
live graph in O(|ΔG|) without copying or mutating anything, and raises a
typed :class:`~repro.errors.BatchValidationError` subclass describing
the first offending op, so :meth:`DynamicGraphSession.update
<repro.session.DynamicGraphSession.update>` can reject the batch before
any replica or state is touched.

The simulation mirrors strict-apply semantics exactly: a batch passes
validation if and only if :func:`repro.graph.updates.apply_updates`
with ``strict=True`` would apply it cleanly.  On top of that it checks
edge weights against a policy the strict apply has no opinion on:

* ``"any"`` — no weight checks;
* ``"finite"`` (default) — NaN and ±inf weights are rejected (they
  poison every distance/width fixpoint);
* ``"spec"`` — additionally, negative weights are rejected when the
  session has a registered algorithm listed in
  :data:`NONNEGATIVE_WEIGHT_ALGORITHMS` (Dijkstra's correctness
  argument needs ``w ≥ 0``).

>>> from repro.graph import Graph, Batch, EdgeDeletion
>>> g = Graph(); g.add_edge(0, 1)
>>> try:
...     validate_batch(g, Batch([EdgeDeletion(0, 1), EdgeDeletion(0, 1)]))
... except ContradictoryUpdateError as exc:
...     print(exc.index)
1
"""

from __future__ import annotations

import math
from typing import Any, Dict, FrozenSet, Optional, Set, Tuple

from ..errors import (
    ContradictoryUpdateError,
    InvalidWeightError,
    ReproError,
    UnknownNodeError,
)
from ..graph.graph import Graph, Node
from ..graph.updates import (
    Batch,
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)

#: Algorithms whose correctness requires nonnegative edge weights; under
#: ``weight_policy="spec"`` a session with one of these registered
#: rejects negative-weight insertions.
NONNEGATIVE_WEIGHT_ALGORITHMS: FrozenSet[str] = frozenset({"SSSP"})

WEIGHT_POLICIES = ("any", "finite", "spec")


class _BatchSimulation:
    """O(|ΔG|) presence overlay over an unmutated base graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.directed = graph.directed
        self.nodes_added: Set[Node] = set()
        self.nodes_removed: Set[Node] = set()
        # A node that was removed at any point loses its base edges for
        # good — re-creating it starts from an isolated node.
        self.nodes_reset: Set[Node] = set()
        self.edges_added: Set[Tuple[Node, Node]] = set()
        self.edges_removed: Set[Tuple[Node, Node]] = set()

    def _key(self, u: Node, v: Node) -> Tuple[Node, Node]:
        if self.directed:
            return (u, v)
        try:
            return (u, v) if u <= v else (v, u)  # type: ignore[operator]
        except TypeError:
            return (u, v) if repr(u) <= repr(v) else (v, u)

    def has_node(self, v: Node) -> bool:
        if v in self.nodes_removed:
            return False
        return v in self.nodes_added or self.graph.has_node(v)

    def has_edge(self, u: Node, v: Node) -> bool:
        key = self._key(u, v)
        if key in self.edges_added:
            return True
        if key in self.edges_removed:
            return False
        if u in self.nodes_reset or v in self.nodes_reset:
            return False
        return self.graph.has_edge(u, v)

    def ensure_node(self, v: Node) -> None:
        if not self.has_node(v):
            self.nodes_added.add(v)
            self.nodes_removed.discard(v)

    def add_node(self, v: Node) -> None:
        self.nodes_added.add(v)
        self.nodes_removed.discard(v)

    def add_edge(self, u: Node, v: Node) -> None:
        self.ensure_node(u)
        self.ensure_node(v)
        key = self._key(u, v)
        self.edges_added.add(key)
        self.edges_removed.discard(key)

    def remove_edge(self, u: Node, v: Node) -> None:
        key = self._key(u, v)
        self.edges_added.discard(key)
        self.edges_removed.add(key)

    def remove_node(self, v: Node) -> None:
        self.nodes_added.discard(v)
        self.nodes_removed.add(v)
        self.nodes_reset.add(v)
        # Overlay edges incident to v die with it (base edges are covered
        # by nodes_reset).  The overlay is batch-sized, so this is cheap.
        for key in [k for k in self.edges_added if v in k]:
            self.edges_added.discard(key)


def _check_weight(weight: Any, index: int, forbid_negative: bool) -> None:
    try:
        finite = math.isfinite(weight)
    except TypeError:
        raise InvalidWeightError(
            f"update #{index}: weight {weight!r} is not a number", index
        ) from None
    if not finite:
        raise InvalidWeightError(
            f"update #{index}: weight {weight!r} is not finite; NaN/±inf "
            "weights poison every weighted fixpoint",
            index,
        )
    if forbid_negative and weight < 0:
        raise InvalidWeightError(
            f"update #{index}: negative weight {weight!r} violates the "
            "nonnegative-weight requirement of a registered algorithm "
            f"(policy 'spec'; see NONNEGATIVE_WEIGHT_ALGORITHMS)",
            index,
        )


def validate_batch(
    graph: Graph,
    delta: Batch,
    weight_policy: str = "finite",
    forbid_negative: bool = False,
) -> None:
    """Raise a typed error if ``ΔG`` would not apply cleanly to ``graph``.

    Mirrors ``apply_updates(graph, delta, strict=True)`` without mutating
    anything; see the module docstring for the weight policy.  The raised
    error's ``index`` attribute points at the offending unit update.
    """
    if weight_policy not in WEIGHT_POLICIES:
        raise ReproError(
            f"unknown weight policy {weight_policy!r}; expected one of {WEIGHT_POLICIES}"
        )
    check_weights = weight_policy != "any"
    forbid_negative = forbid_negative and weight_policy == "spec"
    sim = _BatchSimulation(graph)

    def validate_insertion(u: Update, index: int) -> None:
        if check_weights:
            _check_weight(u.weight, index, forbid_negative)
        if sim.has_edge(u.u, u.v):
            raise ContradictoryUpdateError(
                f"update #{index}: edge ({u.u!r}, {u.v!r}) is already "
                "present at this point in the batch",
                index,
            )
        sim.add_edge(u.u, u.v)

    for index, u in enumerate(delta):
        if isinstance(u, EdgeInsertion):
            validate_insertion(u, index)
        elif isinstance(u, EdgeDeletion):
            if not sim.has_edge(u.u, u.v):
                if not sim.has_node(u.u) or not sim.has_node(u.v):
                    missing = u.u if not sim.has_node(u.u) else u.v
                    raise UnknownNodeError(
                        f"update #{index}: cannot delete edge ({u.u!r}, "
                        f"{u.v!r}); node {missing!r} is unknown at this "
                        "point in the batch",
                        index,
                    )
                raise ContradictoryUpdateError(
                    f"update #{index}: edge ({u.u!r}, {u.v!r}) is absent "
                    "at this point in the batch",
                    index,
                )
            sim.remove_edge(u.u, u.v)
        elif isinstance(u, VertexInsertion):
            if sim.has_node(u.v):
                raise ContradictoryUpdateError(
                    f"update #{index}: node {u.v!r} is already present at "
                    "this point in the batch",
                    index,
                )
            sim.add_node(u.v)
            for e in u.edges:
                validate_insertion(e, index)
        elif isinstance(u, VertexDeletion):
            if not sim.has_node(u.v):
                raise UnknownNodeError(
                    f"update #{index}: cannot delete node {u.v!r}; it is "
                    "unknown at this point in the batch",
                    index,
                )
            sim.remove_node(u.v)
        else:
            raise ContradictoryUpdateError(
                f"update #{index}: unknown update type {type(u).__name__}", index
            )


def session_weight_requirements(algorithms) -> bool:
    """True when any registered algorithm name demands nonnegative weights."""
    return any(name in NONNEGATIVE_WEIGHT_ALGORITHMS for name in algorithms)
