"""Dynamic thread-sanitizer cross-check for the single-writer serve tier.

The static pass (``repro lint --threads``, rules T001–T007) proves the
*code* cannot reach a session mutation from a reader thread.  This
module is the dynamic half of that argument: cheap happens-before
assertions at the same choke points, armed at runtime, that catch the
races the static analysis can only approximate — a test (or an embedder)
calling :meth:`~repro.session.DynamicGraphSession.update` directly while
a :class:`~repro.serve.service.QueryService` writer thread owns the
session, a WAL append observed *after* the apply it logs, two threads
racing :meth:`SnapshotStore.publish <repro.serve.state.SnapshotStore.publish>`.

Like the fault harness (:mod:`repro.resilience.faults`), the sanitizer
is armed through the environment: ``REPRO_TSAN=on`` enables every check
at import; unset (the default) every entry point is a single global load
and a ``False`` branch, so instrumented hot paths cost nothing in
production.  Tests can arm it programmatically with :func:`enable` /
:func:`disable` (or the :func:`enabled_scope` context manager).

Checks
------
ownership
    A thread may :func:`claim_owner` an object (the serve writer thread
    claims its session).  While claimed, any :func:`guarded_mutation`
    entered from a *different* thread raises
    :class:`SanitizerViolation` — the dynamic twin of lint rule T001.
overlap
    Even without a claimed owner, two threads inside guarded mutations
    of the same object at once is a violation (there is no second
    writer to be "the" writer).
write-ahead ordering
    :func:`wal_logged` records each durably-appended sequence number;
    :func:`apply_starting` asserts the sequence being applied was
    appended first (the dynamic twin of T006), and appends must be
    monotonic.
publication
    :func:`publish_region` asserts snapshot publication is serial and
    the published sequence never regresses (readers would otherwise
    observe time going backwards).

State is held per-object in a :class:`weakref.WeakKeyDictionary`, so
instrumenting an object never extends its lifetime, and a fresh session
starts with a clean slate.
"""

from __future__ import annotations

import functools
import os
import threading
import weakref
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from ..errors import ReproError

__all__ = [
    "SanitizerViolation",
    "apply_starting",
    "claim_owner",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "guarded_mutation",
    "owner_of",
    "publish_region",
    "release_owner",
    "reset",
    "wal_logged",
]


class SanitizerViolation(ReproError):
    """A happens-before or ownership assertion failed.

    Raised synchronously on the offending thread, at the exact operation
    that broke the invariant — the sanitizer's whole point is that the
    stack trace *is* the race report.
    """


_ENABLED = os.environ.get("REPRO_TSAN", "").strip().lower() in ("1", "on", "true", "yes")

#: One lock for all bookkeeping.  Checks run at apply/publish
#: boundaries (never inside fixpoint loops), so contention is nil; a
#: single lock keeps every check atomic with respect to every other.
_LOCK = threading.Lock()


class _State:
    """Sanitizer bookkeeping for one instrumented object."""

    __slots__ = (
        "owner_ident",
        "owner_name",
        "owner_role",
        "mutator_ident",
        "mutator_name",
        "mutator_label",
        "mutator_depth",
        "appended_seq",
        "publisher_ident",
        "publisher_name",
        "published_seq",
    )

    def __init__(self) -> None:
        self.owner_ident: Optional[int] = None
        self.owner_name: Optional[str] = None
        self.owner_role: Optional[str] = None
        self.mutator_ident: Optional[int] = None
        self.mutator_name: Optional[str] = None
        self.mutator_label: Optional[str] = None
        self.mutator_depth: int = 0
        self.appended_seq: Optional[int] = None
        self.publisher_ident: Optional[int] = None
        self.publisher_name: Optional[str] = None
        self.published_seq: Optional[int] = None


_STATES: "weakref.WeakKeyDictionary[Any, _State]" = weakref.WeakKeyDictionary()


def enabled() -> bool:
    """Whether sanitizer checks are currently armed."""
    return _ENABLED


def enable() -> None:
    """Arm every check (equivalent to ``REPRO_TSAN=on``)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Disarm every check and drop all recorded state."""
    global _ENABLED
    _ENABLED = False
    reset()


@contextmanager
def enabled_scope() -> Iterator[None]:
    """Arm the sanitizer for a ``with`` block (tests)."""
    was = _ENABLED
    enable()
    try:
        yield
    finally:
        if not was:
            disable()


def reset(obj: Any = None) -> None:
    """Forget recorded state for ``obj`` (or for everything)."""
    with _LOCK:
        if obj is None:
            _STATES.clear()
        else:
            _STATES.pop(obj, None)


def _state(obj: Any) -> _State:
    state = _STATES.get(obj)
    if state is None:
        state = _State()
        _STATES[obj] = state
    return state


# ----------------------------------------------------------------------
# Ownership
# ----------------------------------------------------------------------
def claim_owner(obj: Any, role: str = "writer") -> None:
    """Declare the calling thread the single writer of ``obj``.

    While the claim stands, any :func:`guarded_mutation` of ``obj``
    entered from another thread is a violation.  Claiming an object a
    *different* live thread already owns is itself a violation (two
    writer loops over one session).
    """
    if not _ENABLED:
        return
    me = threading.current_thread()
    with _LOCK:
        state = _state(obj)
        if state.owner_ident is not None and state.owner_ident != me.ident:
            raise SanitizerViolation(
                f"thread {me.name!r} claimed {_describe(obj)} as {role!r} but "
                f"thread {state.owner_name!r} already owns it as "
                f"{state.owner_role!r} — two single-writers"
            )
        state.owner_ident = me.ident
        state.owner_name = me.name
        state.owner_role = role


def release_owner(obj: Any) -> None:
    """Release the calling thread's ownership claim on ``obj``."""
    if not _ENABLED:
        return
    with _LOCK:
        state = _STATES.get(obj)
        if state is None:
            return
        state.owner_ident = None
        state.owner_name = None
        state.owner_role = None


def owner_of(obj: Any) -> Optional[str]:
    """Name of the thread currently owning ``obj``, or ``None``."""
    if not _ENABLED:
        return None
    with _LOCK:
        state = _STATES.get(obj)
        return state.owner_name if state is not None else None


# ----------------------------------------------------------------------
# Guarded mutations
# ----------------------------------------------------------------------
def guarded_mutation(label: str) -> Callable:
    """Decorate a method as a single-writer mutation point.

    On entry (when armed) the calling thread must either *be* the
    claimed owner, or — with no claim standing — be the only thread
    inside any guarded mutation of the object.  Re-entrant calls on the
    same thread are fine (``recover`` re-registers queries, ``close``
    checkpoints).
    """

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return func(self, *args, **kwargs)
            _mutation_enter(self, label)
            try:
                return func(self, *args, **kwargs)
            finally:
                _mutation_exit(self)

        return wrapper

    return decorate


def _mutation_enter(obj: Any, label: str) -> None:
    me = threading.current_thread()
    with _LOCK:
        state = _state(obj)
        if state.owner_ident is not None and state.owner_ident != me.ident:
            raise SanitizerViolation(
                f"{label} called from thread {me.name!r} while thread "
                f"{state.owner_name!r} owns {_describe(obj)} as "
                f"{state.owner_role!r} — route the op through the owner"
            )
        if state.mutator_ident is not None and state.mutator_ident != me.ident:
            raise SanitizerViolation(
                f"{label} called from thread {me.name!r} while thread "
                f"{state.mutator_name!r} is inside {state.mutator_label} on "
                f"{_describe(obj)} — overlapping mutations"
            )
        state.mutator_ident = me.ident
        state.mutator_name = me.name
        state.mutator_label = label
        state.mutator_depth += 1


def _mutation_exit(obj: Any) -> None:
    with _LOCK:
        state = _STATES.get(obj)
        if state is None:
            return
        state.mutator_depth -= 1
        if state.mutator_depth <= 0:
            state.mutator_depth = 0
            state.mutator_ident = None
            state.mutator_name = None
            state.mutator_label = None


# ----------------------------------------------------------------------
# Write-ahead ordering
# ----------------------------------------------------------------------
def wal_logged(obj: Any, seq: int) -> None:
    """Record that batch ``seq`` was durably appended to ``obj``'s WAL.

    Appends must be strictly monotonic — a duplicate or regressing
    sequence number means two code paths are racing the log.
    """
    if not _ENABLED:
        return
    with _LOCK:
        state = _state(obj)
        if state.appended_seq is not None and seq <= state.appended_seq:
            raise SanitizerViolation(
                f"WAL append seq {seq} on {_describe(obj)} is not past the "
                f"last appended seq {state.appended_seq} — racing appends"
            )
        state.appended_seq = seq


def apply_starting(obj: Any, seq: int, durable: bool = True) -> None:
    """Assert batch ``seq`` was WAL-appended before this apply begins.

    The write-ahead invariant (lint rule T006, dynamically): a durable
    session must never mutate replicas for a batch the log does not yet
    contain, or a crash mid-apply leaves recovery with no record of the
    half-applied batch.  Non-durable sessions (``durable=False``) have
    no log to order against and pass trivially.
    """
    if not _ENABLED or not durable:
        return
    with _LOCK:
        state = _state(obj)
        appended = state.appended_seq
    if appended is not None and seq <= appended:
        return
    raise SanitizerViolation(
            f"apply of batch seq {seq} on {_describe(obj)} is starting but "
            f"the WAL has only appended up to "
            f"{'nothing' if appended is None else appended} — "
            f"write-ahead ordering violated"
        )


# ----------------------------------------------------------------------
# Publication
# ----------------------------------------------------------------------
@contextmanager
def publish_region(store: Any, seq: int) -> Iterator[None]:
    """Wrap one snapshot publication at ``seq``.

    Publication must be serial (one publisher at a time) and monotonic
    (``seq`` never regresses) — otherwise a reader could long-poll past
    a version and then be served an older fixpoint.
    """
    if not _ENABLED:
        yield
        return
    me = threading.current_thread()
    with _LOCK:
        state = _state(store)
        if state.publisher_ident is not None and state.publisher_ident != me.ident:
            raise SanitizerViolation(
                f"thread {me.name!r} entered publish on {_describe(store)} "
                f"while thread {state.publisher_name!r} is mid-publish — "
                f"concurrent publishers"
            )
        if state.published_seq is not None and seq < state.published_seq:
            raise SanitizerViolation(
                f"publish at seq {seq} on {_describe(store)} regresses below "
                f"the last published seq {state.published_seq}"
            )
        state.publisher_ident = me.ident
        state.publisher_name = me.name
    try:
        yield
    finally:
        with _LOCK:
            state = _STATES.get(store)
            if state is not None:
                state.publisher_ident = None
                state.publisher_name = None
                if state.published_seq is None or seq > state.published_seq:
                    state.published_seq = seq


def _describe(obj: Any) -> str:
    return f"{type(obj).__name__}@{id(obj):#x}"
