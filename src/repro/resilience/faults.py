"""Deterministic fault injection at named sites.

Fault tolerance is only as good as its tests, and real faults (a crash
between the graph mutation and the state repair, a torn WAL write, a
listener that throws) are timing-dependent and unreproducible.  This
module makes them deterministic: production code calls
:func:`inject(site) <inject>` at named sites, and a test arms a
:class:`FaultPlan` that raises :class:`InjectedFault` on the n-th hit of
a site.  With no plan armed, :func:`inject` is a global load and a
``None`` check — cheap enough for the sites it instruments (all at
apply/phase boundaries, never inside the fixpoint hot loops).

Sites instrumented across the library (see ``docs/robustness.md``):

===========================  ====================================================
Site                         Fires
===========================  ====================================================
``session.pre-apply``        after validation, before any replica mutates
``session.mid-apply``        between two queries' incremental applies
``session.listener``         inside listener delivery (models a raising listener)
``incremental.mid-apply``    after ``G ⊕ ΔG``, before the generic state repair
``kernel.mid-drain``         after ``G ⊕ ΔG``, before the kernel drain
``scheduler.mid-stream``     before a coalesced window is applied
``engine.fixpoint``          on entry to :func:`~repro.core.engine.run_fixpoint`
``wal.mid-append``           between the two halves of a WAL record (torn write)
``checkpoint.mid-write``     after the temp file is written, before the rename
``shard.reconcile``          inside the sharded tier's batched exchange: on a
                             worker, before absorbing the router-settled values
===========================  ====================================================

Plans can also be armed process-wide through the ``REPRO_FAULTS``
environment variable: ``REPRO_FAULTS="wal.mid-append:2"`` arms the named
triggers at import, ``REPRO_FAULTS=on`` merely confirms the harness is
enabled (the default), and ``REPRO_FAULTS=off`` disables every
:func:`inject` call outright.

>>> with injected("demo.site:2") as plan:
...     inject("demo.site")          # first hit: armed for the 2nd
...     try:
...         inject("demo.site")
...     except InjectedFault as exc:
...         print(exc.site, plan.fired)
demo.site ['demo.site']
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import ReproError

#: Sites the library instruments.  Arming an unknown site is allowed
#: (tests may instrument their own code), but these names are stable API.
KNOWN_SITES = frozenset(
    {
        "session.pre-apply",
        "session.mid-apply",
        "session.listener",
        "incremental.mid-apply",
        "kernel.mid-drain",
        "scheduler.mid-stream",
        "engine.fixpoint",
        "wal.mid-append",
        "checkpoint.mid-write",
        "shard.reconcile",
    }
)


class InjectedFault(ReproError):
    """The deliberate failure raised by an armed fault site."""

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"injected fault at {site!r} (hit {hit})")
        self.site = site
        self.hit = hit


class _Trigger:
    __slots__ = ("site", "at", "times", "fired")

    def __init__(self, site: str, at: int = 1, times: int = 1) -> None:
        if at < 1:
            raise ReproError(f"fault trigger {site!r}: hit index must be >= 1, got {at}")
        self.site = site
        self.at = at          # fire on the at-th hit of the site...
        self.times = times    # ...and on the (times - 1) following hits; 0 = forever
        self.fired = 0


TriggerSpec = Union[str, Tuple[str, int], Tuple[str, int, int]]


class FaultPlan:
    """A deterministic schedule of failures, keyed by site name.

    Triggers are given as ``"site"`` (fire on the first hit),
    ``"site:n"`` (fire on the n-th hit), or ``"site:n:t"`` (fire on hits
    n .. n+t-1; ``t = 0`` means every hit from n on).  Tuples with the
    same shape are accepted too.
    """

    def __init__(self, *triggers: TriggerSpec, exception=InjectedFault) -> None:
        self._triggers: Dict[str, _Trigger] = {}
        self._hits: Dict[str, int] = {}
        self.fired: List[str] = []
        self._exception = exception
        for spec in triggers:
            trigger = self._parse_one(spec)
            self._triggers[trigger.site] = trigger

    @staticmethod
    def _parse_one(spec: TriggerSpec) -> _Trigger:
        if isinstance(spec, tuple):
            return _Trigger(*spec)
        parts = spec.strip().split(":")
        if not parts[0]:
            raise ReproError(f"empty fault site in trigger {spec!r}")
        try:
            at = int(parts[1]) if len(parts) > 1 else 1
            times = int(parts[2]) if len(parts) > 2 else 1
        except ValueError:
            raise ReproError(f"malformed fault trigger {spec!r}; expected 'site[:at[:times]]'") from None
        return _Trigger(parts[0], at, times)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a comma-separated trigger list (the ``REPRO_FAULTS`` format)."""
        return cls(*(part for part in text.split(",") if part.strip()))

    # ------------------------------------------------------------------
    def hit(self, site: str) -> None:
        """Record one hit of ``site``; raise if a trigger is due."""
        count = self._hits.get(site, 0) + 1
        self._hits[site] = count
        trigger = self._triggers.get(site)
        if trigger is None or count < trigger.at:
            return
        if trigger.times and trigger.fired >= trigger.times:
            return
        trigger.fired += 1
        self.fired.append(site)
        raise self._exception(site, count)

    def hits(self, site: str) -> int:
        """How many times ``site`` has been reached under this plan."""
        return self._hits.get(site, 0)

    def __repr__(self) -> str:
        armed = ", ".join(sorted(self._triggers))
        return f"FaultPlan([{armed}], fired={len(self.fired)})"


# ----------------------------------------------------------------------
# Global plan management
# ----------------------------------------------------------------------
_DISABLED = os.environ.get("REPRO_FAULTS", "").strip().lower() in ("0", "off", "false")
_PLAN: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the process-wide plan; returns the previous one."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def inject(site: str) -> None:
    """Hit a fault site.  No-op unless a plan is armed for it."""
    plan = _PLAN
    if plan is not None:
        plan.hit(site)


@contextmanager
def injected(*triggers: TriggerSpec, exception=InjectedFault) -> Iterator[FaultPlan]:
    """Arm a :class:`FaultPlan` for the duration of a ``with`` block."""
    plan = FaultPlan(*triggers, exception=exception)
    previous = install(plan)
    try:
        yield plan
    finally:
        install(previous)


def _install_env_plan() -> None:
    """Arm the plan named by ``REPRO_FAULTS``, if it carries triggers."""
    raw = os.environ.get("REPRO_FAULTS", "").strip()
    if not raw or raw.lower() in ("0", "off", "false", "1", "on", "true", "smoke"):
        return
    install(FaultPlan.parse(raw))


if not _DISABLED:
    _install_env_plan()
else:  # pragma: no cover - exercised via subprocess in tests

    def inject(site: str) -> None:  # noqa: F811 - deliberate disable shim
        return None
