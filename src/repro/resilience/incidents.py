"""Structured incident reporting for fault-tolerant sessions.

Every anomaly a session survives — a rolled-back batch, an isolated
listener exception, a runaway drain, an audit divergence, a self-heal —
is recorded as an :class:`Incident` in the session's
:class:`IncidentLog` instead of being silently swallowed.  The log is a
bounded ring (oldest incidents are dropped past ``max_size``), cheap to
keep forever, and serializable for the CLI's JSON reports.

>>> log = IncidentLog(max_size=2)
>>> log.record("listener-error", query="cc", detail="boom")
Incident(kind='listener-error', query='cc', seq=-1)
>>> log.record("rollback", seq=7)
Incident(kind='rollback', query=None, seq=7)
>>> [i.kind for i in log]
['listener-error', 'rollback']
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: Incident kinds the session emits.  Stable API, used by tests and docs.
KINDS = (
    "validation-error",    # batch rejected before any mutation
    "rollback",            # transactional apply failed; session restored
    "listener-error",      # listener raised; isolated and skipped
    "runaway-drain",       # step/time budget exceeded
    "apply-error",         # one query's incremental apply raised
    "quarantine",          # query switched to batch-fallback mode
    "self-heal",           # state recomputed from scratch
    "audit-divergence",    # sampled/full audit found a broken invariant
    "healed",              # quarantine lifted after verification
    "wal-error",           # WAL append/abort failed (durability degraded)
    "wal-torn-tail",       # recovery dropped a truncated trailing record
    "checkpoint-error",    # checkpoint write failed (old one still valid)
    "replay-error",        # a WAL record failed to re-apply on recovery
)


@dataclass
class Incident:
    """One recorded anomaly: what, where, and around which batch."""

    kind: str
    query: Optional[str] = None    #: registered query name, if query-scoped
    detail: str = ""               #: human-readable description
    error: Optional[str] = None    #: repr of the underlying exception
    seq: int = -1                  #: WAL sequence number of the batch, if any

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "query": self.query,
            "detail": self.detail,
            "error": self.error,
            "seq": self.seq,
        }

    def __repr__(self) -> str:
        return f"Incident(kind={self.kind!r}, query={self.query!r}, seq={self.seq})"


class IncidentLog:
    """A bounded, append-only ring of :class:`Incident` records."""

    def __init__(self, max_size: int = 256) -> None:
        self._ring: deque = deque(maxlen=max_size)
        self.total = 0  #: incidents ever recorded, including dropped ones

    def record(
        self,
        kind: str,
        query: Optional[str] = None,
        detail: str = "",
        error: Optional[BaseException] = None,
        seq: int = -1,
    ) -> Incident:
        incident = Incident(
            kind=kind,
            query=query,
            detail=detail,
            error=repr(error) if error is not None else None,
            seq=seq,
        )
        self._ring.append(incident)
        self.total += 1
        return incident

    def by_kind(self, kind: str) -> List[Incident]:
        return [i for i in self._ring if i.kind == kind]

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [i.as_dict() for i in self._ring]

    def __iter__(self) -> Iterator[Incident]:
        return iter(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return f"IncidentLog({len(self)} kept, {self.total} total)"
