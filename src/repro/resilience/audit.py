"""Runtime σ_A invariant audits of live fixpoint states.

Theorem 1's correctness argument rests on the session's states *being*
fixpoints: every status variable equals its update function applied to
the current assignment (``D = f_A(D)``), and the variable set matches
``Ψ_A(G)``.  Nothing re-checks that at runtime — bit rot, a buggy
listener poking at state, a torn apply that slipped past the
transaction layer, or a genuine framework bug would go unnoticed until
answers are visibly wrong.  This module re-checks it, in the spirit of
the lint contract pass (:mod:`repro.lint.contracts` probes σ_A on
seeded workloads at development time; this probes it on the *live*
state in production):

* :func:`sigma_audit` — cheap, sampled: the variable set is compared to
  ``spec.variables(G, Q)`` exactly, and a random sample of variables is
  re-evaluated through ``spec.update`` against the live assignment.
  Any difference is a σ_A violation — at a fixpoint of a contracting,
  monotonic spec, ``f`` moves nothing.
* :func:`full_audit` — exhaustive: a from-scratch batch run on a copy
  of the replica, diffed value by value.  Works for every algorithm
  pair, including the non-spec ones (DFS), and is what the sampled
  audit escalates to on demand (``repro audit --full``).

Audits only *detect*; the session reacts (quarantine + batch-recompute
self-heal) in :meth:`DynamicGraphSession.audit
<repro.session.DynamicGraphSession.audit>`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.state import FixpointState
from ..graph.graph import Graph


@dataclass
class AuditFinding:
    """One broken invariant: a variable whose value or existence is wrong."""

    kind: str          #: "value-divergence" | "missing-variable" | "extra-variable"
    key: Any
    expected: Any = None
    actual: Any = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "key": repr(self.key),
            "expected": repr(self.expected),
            "actual": repr(self.actual),
        }


@dataclass
class QueryAudit:
    """Audit outcome for one registered query."""

    query: str
    mode: str                        #: "sigma" (sampled) or "full"
    checked: int = 0                 #: variables actually examined
    findings: List[AuditFinding] = field(default_factory=list)
    healed: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "mode": self.mode,
            "checked": self.checked,
            "clean": self.clean,
            "healed": self.healed,
            "findings": [f.as_dict() for f in self.findings],
        }


@dataclass
class AuditReport:
    """Audit outcomes across a session's registered queries."""

    entries: List[QueryAudit] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(entry.clean for entry in self.entries)

    def as_dict(self) -> Dict[str, Any]:
        return {"clean": self.clean, "queries": [e.as_dict() for e in self.entries]}

    def __repr__(self) -> str:
        dirty = sum(1 for e in self.entries if not e.clean)
        return f"AuditReport({len(self.entries)} queries, {dirty} dirty)"


_MAX_FINDINGS = 16  # enough to diagnose; the heal path doesn't need more


def sigma_audit(
    spec,
    graph: Graph,
    state: FixpointState,
    query: Any,
    sample: Optional[int] = 32,
    rng: Optional[random.Random] = None,
) -> QueryAudit:
    """Sampled σ_A probe of one spec-backed state; see module docstring.

    ``sample=None`` re-evaluates every variable (still cheaper than a
    batch run: one ``f`` evaluation per variable, no propagation).
    """
    audit = QueryAudit(query="", mode="sigma")
    values = state.values

    expected_keys = set(spec.variables(graph, query))
    for key in expected_keys:
        if key not in values:
            audit.findings.append(AuditFinding("missing-variable", key))
            if len(audit.findings) >= _MAX_FINDINGS:
                return audit
    for key in values:
        if key not in expected_keys:
            audit.findings.append(AuditFinding("extra-variable", key, actual=values[key]))
            if len(audit.findings) >= _MAX_FINDINGS:
                return audit

    keys = [k for k in values if k in expected_keys]
    if sample is not None and len(keys) > sample:
        keys.sort(key=repr)
        keys = (rng or random.Random(0)).sample(keys, sample)

    def value_of(k):
        if k in values:
            return values[k]
        return spec.initial_value(k, graph, query)

    for key in keys:
        audit.checked += 1
        expected = spec.update(key, value_of, graph, query)
        if expected != values[key]:
            audit.findings.append(
                AuditFinding("value-divergence", key, expected=expected, actual=values[key])
            )
            if len(audit.findings) >= _MAX_FINDINGS:
                break
    return audit


def full_audit(batch_algorithm, graph: Graph, state: FixpointState, query: Any) -> QueryAudit:
    """Exhaustive audit: diff the live state against a fresh batch run."""
    audit = QueryAudit(query="", mode="full")
    fresh = batch_algorithm.run(graph.copy(), query)
    live, truth = state.values, fresh.values
    audit.checked = len(truth)
    for key, expected in truth.items():
        if key not in live:
            audit.findings.append(AuditFinding("missing-variable", key, expected=expected))
        elif live[key] != expected:
            audit.findings.append(
                AuditFinding("value-divergence", key, expected=expected, actual=live[key])
            )
        if len(audit.findings) >= _MAX_FINDINGS:
            return audit
    for key in live:
        if key not in truth:
            audit.findings.append(AuditFinding("extra-variable", key, actual=live[key]))
            if len(audit.findings) >= _MAX_FINDINGS:
                break
    return audit
