"""Pre-batch snapshots and in-place rollback (the session's undo log).

The session applies one ``ΔG`` to *every* registered query's replica and
state; if any of those applies fails, the already-mutated replicas must
be restored or the session is torn — replicas disagree with each other
and with the reference graph.  :class:`SessionTransaction` captures a
snapshot of each query's ``(graph, state)`` pair before the first apply
and can restore any subset of them afterwards.

Snapshots are full copies (O(|G|) per query per batch).  A finer
operation-level undo log would be cheaper, but vertex deletions are not
invertible (:meth:`Batch.inverted <repro.graph.updates.Batch.inverted>`
refuses them, because the incident edges are lost) and kernel drains
write states through array replays, so a copy is the only undo record
that is correct for *every* engine path.  Sessions that cannot afford it
set ``SessionConfig.transactional = False`` and rely on quarantine +
batch recompute to repair torn queries instead (see
``docs/robustness.md`` for the trade-off matrix).

Graphs are restored **in place** so that aliases callers may hold (the
``RegisteredQuery.graph`` replica, the session's reference graph) stay
valid across a rollback.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.state import FixpointState
from ..graph.graph import Graph


def restore_graph_inplace(target: Graph, snapshot: Graph) -> None:
    """Make ``target`` structurally identical to ``snapshot``, in place.

    ``snapshot`` must be a private copy — its adjacency dicts are handed
    to ``target`` without re-copying (the transaction owns its snapshots
    and never reuses one after a restore).
    """
    target.directed = snapshot.directed
    target._succ = snapshot._succ
    target._pred = snapshot._pred if snapshot.directed else snapshot._succ
    target._node_labels = snapshot._node_labels
    target._edge_labels = snapshot._edge_labels
    target._num_edges = snapshot._num_edges


def restore_state_inplace(target: FixpointState, snapshot: FixpointState) -> None:
    """Make ``target`` carry ``snapshot``'s values/timestamps, in place.

    The counter and changelog are reset — a rollback never happens while
    instrumentation is live (the session applies uninstrumented).
    """
    target.values = snapshot.values
    target.timestamps = snapshot.timestamps
    target.clock = snapshot.clock
    target.rounds = snapshot.rounds
    target.changelog = None


class SessionTransaction:
    """Copy-on-begin undo log for one update batch across all queries."""

    def __init__(self) -> None:
        self._snapshots: Dict[str, Tuple[Graph, FixpointState]] = {}
        self._restored: set = set()

    @classmethod
    def begin(cls, queries) -> "SessionTransaction":
        """Snapshot every ``RegisteredQuery`` in ``queries`` (an iterable)."""
        txn = cls()
        for registered in queries:
            txn._snapshots[registered.name] = (
                registered.graph.copy(),
                registered.state.copy(),
            )
        return txn

    def restore(self, registered) -> bool:
        """Restore one query's replica and state from its snapshot.

        Returns False (and does nothing) when the query was not
        snapshotted or was already restored — each snapshot is
        single-use because the restore transfers its internals.
        """
        if registered.name in self._restored:
            return False
        snapshot = self._snapshots.get(registered.name)
        if snapshot is None:
            return False
        graph_snapshot, state_snapshot = snapshot
        restore_graph_inplace(registered.graph, graph_snapshot)
        restore_state_inplace(registered.state, state_snapshot)
        # A kernel mirror revalidates by object identity + clock + counts,
        # all of which an in-place rollback can leave unchanged (a batch
        # with zero ΔO and a count-neutral delete/insert pair); its overlay
        # would still carry the rolled-back ops.  Drop it unconditionally.
        incremental = getattr(registered, "incremental", None)
        if incremental is not None and hasattr(incremental, "_kernel_ctx"):
            incremental._kernel_ctx = None
        self._restored.add(registered.name)
        return True

    def rollback(self, queries) -> int:
        """Restore every snapshotted query in ``queries``; returns count."""
        restored = 0
        for registered in queries:
            if self.restore(registered):
                restored += 1
        return restored

    def __len__(self) -> int:
        return len(self._snapshots)

    def __repr__(self) -> str:
        return f"SessionTransaction({len(self._snapshots)} snapshots, {len(self._restored)} restored)"
