"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render a fixed-width table (markdown-ish pipes)."""
    grid = [[_cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in grid:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    parts.extend(line(row) for row in grid)
    return "\n".join(parts)


@dataclass
class ExperimentResult:
    """A rendered experiment: title, table, and free-form notes."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def format(self) -> str:
        text = format_table(self.headers, self.rows, title=f"== {self.title} ==")
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text

    def show(self) -> None:
        print(self.format())
