"""Table rendering and summary-statistic helpers.

One code path formats every table in the project: the terminal tables
of ``python -m repro.bench``, the markdown of ``reproduction_run.md``,
and the registry trend reports of ``repro bench report``
(:mod:`repro.evalhub.report`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Sequence


def geometric_mean(values) -> float:
    """Geomean of the positive entries (zeros/negatives dropped)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render a fixed-width table (markdown-ish pipes)."""
    grid = [[_cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in grid:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    parts.extend(line(row) for row in grid)
    return "\n".join(parts)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a GitHub-flavoured markdown table (cells via :func:`_cell`)."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "---|" * len(headers),
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cell(x) for x in row) + " |")
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """A rendered experiment: title, table, and free-form notes.

    ``records`` carries the same measurements as flat registry rows
    (metric fields plus |CHANGED|/|AFF| counter blocks where the
    experiment knows them) so the evaluation hub can append an
    experiment run to ``benchmarks/results/`` without re-parsing the
    human-facing table.
    """

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    records: List[dict] = field(default_factory=list)

    def format(self) -> str:
        text = format_table(self.headers, self.rows, title=f"== {self.title} ==")
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text

    def show(self) -> None:
        print(self.format())
