"""The paper's evaluation, experiment by experiment.

Each function regenerates the rows of one table or figure of Section 6
and returns an :class:`~repro.bench.tables.ExperimentResult`.  Absolute
numbers differ from the paper (pure Python on laptop-scale proxies — see
DESIGN.md §2); the *shape* — who wins, by what factor, where crossovers
fall — is the reproduction target recorded in EXPERIMENTS.md.

Run everything with ``python -m repro.bench``.
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, List, Optional, Sequence

from ..algorithms.cc import CCSpec, NaiveIncCC
from ..baselines import UnitLoop
from ..core.boundedness import verify_relative_boundedness
from ..datasets import load as load_dataset
from ..generators.random_graphs import assign_labels, assign_weights, barabasi_albert
from ..generators.updates import random_updates
from ..graph.graph import Graph
from ..graph.temporal import TemporalGraph
from ..graph.updates import Batch, updated_copy
from ..metrics.memory import deep_size_bytes
from ..metrics.timers import time_call
from .runners import ALL_SETUPS, QueryClassSetup, time_batch, undirected_view
from .tables import ExperimentResult

PAPER_DATASETS = ("WD", "LJ", "DP", "OKT", "TW", "FS")


def _dataset_graph(name: str, scale: float) -> Graph:
    data = load_dataset(name, scale)
    if isinstance(data, TemporalGraph):
        first, last = data.time_span
        return data.snapshot((first + last) / 2)
    return data


def _graph_for(setup: QueryClassSetup, name: str, scale: float) -> Graph:
    graph = _dataset_graph(name, scale)
    if setup.undirected_only:
        graph = undirected_view(graph)
    return graph


# ----------------------------------------------------------------------
# Table 1 — headline comparison at |ΔG| = 4%
# ----------------------------------------------------------------------
def table1(scale: float = 0.5) -> ExperimentResult:
    """Table 1: batch vs fine-tuned competitor vs deduced A_Δ, 4% updates."""
    result = ExperimentResult(
        title="Table 1: performance of incrementalized algorithms (FS proxy, |ΔG|=4%)",
        headers=["Problem", "Batch A (s)", "Competitor (s)", "Deduced A_Δ (s)"],
    )
    for name in ("SSSP", "Sim", "LCC"):
        setup = ALL_SETUPS[name]
        graph = _graph_for(setup, "FS", scale)
        query = setup.make_query(graph)
        delta = random_updates(graph, max(1, int(0.04 * graph.size)), seed=11)

        batch = setup.batch_factory()
        state = batch.run(graph.copy(), query)

        new_graph = updated_copy(graph, delta)
        _, batch_seconds = time_call(setup.batch_factory().run, new_graph, query)

        competitor = setup.competitor_factory()
        competitor.build(graph.copy(), query)
        _, competitor_seconds = time_call(competitor.apply, delta)

        inc = setup.inc_factory()
        inc_graph = graph.copy()
        inc_result, inc_seconds = time_call(inc.apply, inc_graph, state, delta, query)

        result.rows.append([name, batch_seconds, competitor_seconds, inc_seconds])
        result.records.append(
            {
                "name": f"table1_{name}",
                "query_class": name,
                "dataset": "FS",
                "changed": delta.size,
                "aff": getattr(inc_result, "affected_size", None),
                "batch_ms": round(batch_seconds * 1e3, 3),
                "competitor_ms": round(competitor_seconds * 1e3, 3),
                "inc_ms": round(inc_seconds * 1e3, 3),
                "speedup_vs_batch": round(batch_seconds / inc_seconds, 3)
                if inc_seconds
                else None,
            }
        )
    result.notes.append("paper: SSSP 4.57/1.56/0.88s; Sim 4.86/1.03/0.98s; LCC 78.1/18.6/12.0s")
    return result


# ----------------------------------------------------------------------
# Exp-1 — unit updates across the six datasets (Figure 6)
# ----------------------------------------------------------------------
def exp1_unit_updates(
    query_class: str,
    scale: float = 0.3,
    n_updates: int = 30,
    datasets: Sequence[str] = PAPER_DATASETS,
) -> ExperimentResult:
    """Figure 6: average per-unit-update time, deduced vs competitor."""
    setup = ALL_SETUPS[query_class]
    result = ExperimentResult(
        title=f"Figure 6 ({query_class}): unit updates, avg ms per update",
        headers=["Dataset", f"Inc{query_class} ins", "Comp ins", f"Inc{query_class} del", "Comp del"],
    )
    for name in datasets:
        graph = _graph_for(setup, name, scale)
        query = setup.make_query(graph)
        insertions = random_updates(graph, n_updates, insert_fraction=1.0, seed=21)
        # Deletions sampled against the post-insertion graph for consistency.
        after_ins = updated_copy(graph, insertions)
        deletions = random_updates(after_ins, n_updates, insert_fraction=0.0, seed=22)

        aff_sizes: List[int] = []

        def measure(algo_kind: str) -> List[float]:
            work = graph.copy()
            times: List[float] = []
            if algo_kind == "inc":
                inc = setup.inc_factory()
                state = setup.batch_factory().run(work, query)
                for batch in list(insertions.unit_batches()) + list(deletions.unit_batches()):
                    res, seconds = time_call(inc.apply, work, state, batch, query)
                    times.append(seconds)
                    aff = getattr(res, "affected_size", None)
                    if aff is not None:
                        aff_sizes.append(aff)
            else:
                comp = setup.competitor_for_unit_updates()
                comp.build(work, query)
                for batch in list(insertions.unit_batches()) + list(deletions.unit_batches()):
                    _, seconds = time_call(comp.apply, batch)
                    times.append(seconds)
            return times

        inc_times = measure("inc")
        comp_times = measure("comp")
        half = n_updates
        inc_ins_ms = 1e3 * statistics.mean(inc_times[:half])
        comp_ins_ms = 1e3 * statistics.mean(comp_times[:half])
        inc_del_ms = 1e3 * statistics.mean(inc_times[half:])
        comp_del_ms = 1e3 * statistics.mean(comp_times[half:])
        result.rows.append([name, inc_ins_ms, comp_ins_ms, inc_del_ms, comp_del_ms])
        result.records.append(
            {
                "name": f"fig6_{query_class}_{name}",
                "query_class": query_class,
                "dataset": name,
                "n_updates": n_updates,
                "changed": 1,  # unit updates: |ΔG| = 1 per apply
                "aff_mean": round(statistics.mean(aff_sizes), 1) if aff_sizes else None,
                "aff_max": max(aff_sizes, default=None),
                "inc_ins_ms": round(inc_ins_ms, 4),
                "comp_ins_ms": round(comp_ins_ms, 4),
                "inc_del_ms": round(inc_del_ms, 4),
                "comp_del_ms": round(comp_del_ms, 4),
                "ins_speedup": round(comp_ins_ms / inc_ins_ms, 3) if inc_ins_ms else None,
                "del_speedup": round(comp_del_ms / inc_del_ms, 3) if inc_del_ms else None,
            }
        )
    return result


def exp1_aff(scale: float = 0.3, samples: int = 8) -> ExperimentResult:
    """Exp-1(c): |AFF| as a share of all status variables (OKT proxy)."""
    result = ExperimentResult(
        title="Exp-1(c): affected area for unit updates on OKT proxy",
        headers=["Algorithm", "|AFF|/|Ψ| ins (%)", "|AFF|/|Ψ| del (%)", "H⁰⊆AFF"],
    )
    for name, setup in ALL_SETUPS.items():
        if name == "DFS":
            continue  # DFS is incrementalized outside the generic spec machinery
        spec = {
            "SSSP": lambda: __import__("repro.algorithms.sssp", fromlist=["SSSPSpec"]).SSSPSpec(),
            "CC": lambda: CCSpec(),
            "Sim": lambda: __import__("repro.algorithms.sim", fromlist=["SimSpec"]).SimSpec(),
            "LCC": lambda: __import__("repro.algorithms.lcc", fromlist=["LCCSpec"]).LCCSpec(),
        }[name]()
        graph = _graph_for(setup, "OKT", scale)
        query = setup.make_query(graph)
        ins_shares, del_shares, bounded = [], [], True
        for i in range(samples):
            fraction = 1.0 if i % 2 == 0 else 0.0
            delta = random_updates(graph, 1, insert_fraction=fraction, seed=31 + i)
            report = verify_relative_boundedness(spec, graph, delta, query)
            (ins_shares if fraction == 1.0 else del_shares).append(100.0 * report.aff_share)
            bounded = bounded and report.scope_bounded
        result.rows.append(
            [
                f"Inc{name}",
                statistics.mean(ins_shares) if ins_shares else float("nan"),
                statistics.mean(del_shares) if del_shares else float("nan"),
                "yes" if bounded else "NO",
            ]
        )
    result.notes.append("paper reports AFF shares of 1e-6% .. 1e-3% at 117M-edge scale")
    return result


# ----------------------------------------------------------------------
# Exp-2 — batch updates (Figure 7 a–f + DFS paragraph)
# ----------------------------------------------------------------------
def exp2_vary_delta(
    query_class: str,
    dataset: str,
    percentages: Sequence[float],
    scale: float = 0.5,
) -> ExperimentResult:
    """Figure 7(a)-(f): batch updates of growing |ΔG|."""
    setup = ALL_SETUPS[query_class]
    batch_name = setup.batch_factory().name if hasattr(setup.batch_factory(), "name") else "batch"
    comp_name = setup.competitor_factory().name
    result = ExperimentResult(
        title=f"Figure 7 ({query_class} on {dataset} proxy): batch updates, seconds",
        headers=[
            "|ΔG|/|G| (%)",
            f"batch {batch_name}",
            f"Inc{query_class}",
            f"Inc{query_class}_n",
            comp_name,
        ],
    )
    graph = _graph_for(setup, dataset, scale)
    query = setup.make_query(graph)
    base_state = setup.batch_factory().run(graph.copy(), query)

    for i, pct in enumerate(percentages):
        delta = random_updates(graph, max(1, int(pct * graph.size)), seed=41 + i)

        batch_seconds = time_batch(setup, updated_copy(graph, delta), query)

        inc = setup.inc_factory()
        g1, s1 = graph.copy(), base_state.copy()
        inc_result, inc_seconds = time_call(inc.apply, g1, s1, delta, query)

        loop = UnitLoop(setup.inc_factory())
        g2, s2 = graph.copy(), base_state.copy()
        _, loop_seconds = time_call(loop.apply, g2, s2, delta, query)

        comp = setup.competitor_factory()
        comp.build(graph.copy(), query)
        _, comp_seconds = time_call(comp.apply, delta)

        result.rows.append([100 * pct, batch_seconds, inc_seconds, loop_seconds, comp_seconds])
        result.records.append(
            {
                "name": f"fig7_{query_class}_{dataset}",
                "query_class": query_class,
                "dataset": dataset,
                "delta_pct": 100 * pct,
                "changed": delta.size,
                "aff": getattr(inc_result, "affected_size", None),
                "batch_ms": round(batch_seconds * 1e3, 3),
                "inc_ms": round(inc_seconds * 1e3, 3),
                "loop_ms": round(loop_seconds * 1e3, 3),
                "competitor_ms": round(comp_seconds * 1e3, 3),
                "speedup_vs_batch": round(batch_seconds / inc_seconds, 3)
                if inc_seconds
                else None,
                "speedup_vs_loop": round(loop_seconds / inc_seconds, 3)
                if inc_seconds
                else None,
            }
        )
    return result


# ----------------------------------------------------------------------
# Exp-2(2) — real-life temporal updates (Figure 7 g–i)
# ----------------------------------------------------------------------
def exp2_temporal(scale: float = 0.5, months: int = 5) -> ExperimentResult:
    """Figure 7(g)-(i): monthly Wiki-DE-style update batches."""
    result = ExperimentResult(
        title="Figure 7(g)-(i): temporal WD proxy, total seconds over months",
        headers=["Algorithm", "batch A", "Inc", "Inc_n", "Competitor", "h share (%)"],
    )
    temporal = load_dataset("WD", scale)
    slices = temporal.monthly_batches(months)

    for name in ("SSSP", "CC", "Sim"):
        setup = ALL_SETUPS[name]
        first_graph = slices[0][0]
        if setup.undirected_only:
            first_graph = undirected_view(first_graph)
        query = setup.make_query(first_graph)

        batch_total = 0.0
        for snapshot, delta in slices:
            g = undirected_view(snapshot) if setup.undirected_only else snapshot
            _, seconds = time_call(setup.batch_factory().run, updated_copy(g, delta), query)
            batch_total += seconds

        inc = setup.inc_factory()
        work = first_graph.copy()
        state = setup.batch_factory().run(work, query)
        inc_total, h_shares = 0.0, []
        for _snapshot, delta in slices:
            res, seconds = time_call(inc.apply, work, state, delta, query, False, True)
            inc_total += seconds
            h_shares.append(res.scope_share)

        loop = UnitLoop(setup.inc_factory())
        work2 = first_graph.copy()
        state2 = setup.batch_factory().run(work2, query)
        loop_total = 0.0
        for _snapshot, delta in slices:
            _, seconds = time_call(loop.apply, work2, state2, delta, query)
            loop_total += seconds

        comp = setup.competitor_factory()
        comp.build(first_graph.copy(), query)
        comp_total = 0.0
        for _snapshot, delta in slices:
            _, seconds = time_call(comp.apply, delta)
            comp_total += seconds

        result.rows.append(
            [name, batch_total, inc_total, loop_total, comp_total, 100 * statistics.mean(h_shares)]
        )
    result.notes.append("paper: h takes 47% (SSSP), 92% (CC), 83% (Sim) of Inc cost on WD")
    return result


# ----------------------------------------------------------------------
# Exp-3 — scalability (Figure 7 j–l)
# ----------------------------------------------------------------------
def exp3_scalability(
    query_class: str,
    node_counts: Sequence[int] = (500, 1000, 2000, 4000),
    delta_fraction: float = 0.01,
) -> ExperimentResult:
    """Figure 7(j)-(l): |G| sweep at |ΔG| = 1%·|G| on synthetic graphs."""
    setup = ALL_SETUPS[query_class]
    comp_name = setup.competitor_factory().name
    result = ExperimentResult(
        title=f"Figure 7 scalability ({query_class}): synthetic |G| sweep, |ΔG|=1%",
        headers=["|G|=|V|+|E|", "batch A", f"Inc{query_class}", comp_name],
    )
    for i, n in enumerate(node_counts):
        graph = barabasi_albert(n, 5, seed=51 + i)
        assign_labels(graph, seed=52 + i)
        assign_weights(graph, seed=53 + i)
        if not setup.undirected_only and query_class in ("Sim",):
            pass  # Sim runs fine on undirected graphs (out == neighbors)
        query = setup.make_query(graph)
        delta = random_updates(graph, max(1, int(delta_fraction * graph.size)), seed=54 + i)

        batch_seconds = time_batch(setup, updated_copy(graph, delta), query)

        state = setup.batch_factory().run(graph.copy(), query)
        inc = setup.inc_factory()
        g1 = graph.copy()
        _, inc_seconds = time_call(inc.apply, g1, state, delta, query)

        comp = setup.competitor_factory()
        comp.build(graph.copy(), query)
        _, comp_seconds = time_call(comp.apply, delta)

        result.rows.append([graph.size, batch_seconds, inc_seconds, comp_seconds])
    return result


# ----------------------------------------------------------------------
# Exp-4 — memory (Figure 8)
# ----------------------------------------------------------------------
def exp4_memory(scale: float = 0.3) -> ExperimentResult:
    """Figure 8: memory footprint after processing |ΔG| = 1% on OKT."""
    result = ExperimentResult(
        title="Figure 8: memory usage on OKT proxy (MB), |ΔG|=1%",
        headers=["Algorithm", "batch A", "Inc (state)", "Competitor (structures)"],
    )
    for name, setup in ALL_SETUPS.items():
        graph = _graph_for(setup, "OKT", scale)
        query = setup.make_query(graph)
        delta = random_updates(graph, max(1, int(0.01 * graph.size)), seed=61)

        batch_state = setup.batch_factory().run(updated_copy(graph, delta), query)
        batch_bytes = deep_size_bytes(batch_state.values)

        inc = setup.inc_factory()
        work, state = graph.copy(), setup.batch_factory().run(graph.copy(), query)
        inc.apply(work, state, delta, query)
        inc_bytes = deep_size_bytes(state.values) + deep_size_bytes(state.timestamps)

        comp = setup.competitor_factory()
        comp.build(graph.copy(), query)
        comp.apply(delta)
        comp_bytes = deep_size_bytes(comp) - deep_size_bytes(comp.graph)

        mb = 1.0 / (1024 * 1024)
        result.rows.append([name, batch_bytes * mb, inc_bytes * mb, max(0.0, comp_bytes * mb)])
        result.records.append(
            {
                "name": f"fig8_{name}",
                "query_class": name,
                "dataset": "OKT",
                "changed": delta.size,
                "batch_mb": round(batch_bytes * mb, 4),
                "inc_mb": round(inc_bytes * mb, 4),
                "competitor_mb": round(max(0.0, comp_bytes * mb), 4),
                "inc_over_batch": round(inc_bytes / batch_bytes, 3) if batch_bytes else None,
            }
        )
    result.notes.append("deducible IncSSSP/IncDFS/IncLCC ≈ batch; weakly deducible add timestamps")
    return result


# ----------------------------------------------------------------------
# Ablation — scope function h vs brute-force PE reset (DESIGN.md §5)
# ----------------------------------------------------------------------
def ablation_scope(scale: float = 0.3, samples: int = 6) -> ExperimentResult:
    """Figure-4 h vs Example-2 PE reset on CC edge deletions."""
    result = ExperimentResult(
        title="Ablation: bounded scope function h vs brute-force PE reset (CC, OKT proxy)",
        headers=["Update", "IncCC accesses", "NaiveIncCC accesses", "ratio"],
    )
    from ..algorithms import CCfp, IncCC

    graph = undirected_view(_dataset_graph("OKT", scale))
    for i in range(samples):
        delta = random_updates(graph, 1, insert_fraction=0.0, seed=71 + i)
        g1, s1 = graph.copy(), CCfp().run(graph.copy())
        smart = IncCC().apply(g1, s1, delta, measure=True)
        g2, s2 = graph.copy(), CCfp().run(graph.copy())
        naive = NaiveIncCC().apply(g2, s2, delta)
        assert dict(s1.values) == dict(s2.values)
        ratio = naive.total_accesses / max(1, smart.total_accesses)
        kind = type(delta[0]).__name__
        result.rows.append([f"{kind} #{i}", smart.total_accesses, naive.total_accesses, ratio])
        result.records.append(
            {
                "name": f"ablation_scope_{i}",
                "dataset": "OKT",
                "update": kind,
                "changed": 1,
                "aff": smart.affected_size,
                "smart_accesses": smart.total_accesses,
                "naive_accesses": naive.total_accesses,
                "access_ratio": round(ratio, 2),
            }
        )
    result.notes.append("Example-2 reset floods whole components; Figure-4 h stays in AFF")
    return result


# ----------------------------------------------------------------------
def run_all(scale: float = 0.3) -> List[ExperimentResult]:
    """Every experiment at a common scale (used by ``python -m repro.bench``)."""
    results = [table1(scale)]
    for name in ("SSSP", "CC", "Sim", "DFS", "LCC"):
        results.append(exp1_unit_updates(name, scale=scale, n_updates=15))
    results.append(exp1_aff(scale=min(scale, 0.2)))
    results.append(exp2_vary_delta("SSSP", "FS", (0.02, 0.04, 0.08, 0.16, 0.32), scale))
    results.append(exp2_vary_delta("SSSP", "TW", (0.02, 0.04, 0.08, 0.16, 0.32), scale))
    results.append(exp2_vary_delta("CC", "OKT", (0.04, 0.08, 0.16, 0.32, 0.64), scale))
    results.append(exp2_vary_delta("Sim", "DP", (0.02, 0.04, 0.16, 0.64), scale))
    results.append(exp2_vary_delta("Sim", "FS", (0.02, 0.04, 0.16, 0.64), scale))
    results.append(exp2_vary_delta("LCC", "LJ", (0.02, 0.04, 0.08, 0.16, 0.32), scale))
    results.append(exp2_vary_delta("DFS", "OKT", (0.005, 0.01, 0.02, 0.04, 0.08), scale))
    results.append(exp2_temporal(scale))
    for name in ("SSSP", "CC", "Sim"):
        results.append(exp3_scalability(name))
    results.append(exp4_memory(min(scale, 0.3)))
    results.append(ablation_scope(min(scale, 0.3)))
    return results
