"""ASCII line charts for the experiment harness.

The paper's Figures 6–7 are log-scale line charts; the harness prints
tables, and — with ``python -m repro.bench --plots`` — also renders each
table's numeric columns as a terminal chart so the crossover shapes are
visible at a glance without matplotlib.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Series = Dict[str, List[Tuple[float, float]]]

_MARKERS = "ox+*#%@&"


def ascii_chart(
    series: Series,
    width: int = 64,
    height: int = 16,
    logy: bool = True,
    title: str = "",
    ylabel: str = "",
) -> str:
    """Render named ``(x, y)`` series on one character grid.

    >>> text = ascii_chart({"a": [(0, 1.0), (1, 10.0)]}, width=20, height=6)
    >>> "a" in text and "o" in text
    True
    """
    points = [(x, y) for rows in series.values() for x, y in rows if y > 0 or not logy]
    if not points:
        return f"{title}\n(no data)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    if logy:
        y_lo, y_hi = math.log10(min(ys)), math.log10(max(ys))
    else:
        y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, rows) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in rows:
            if logy:
                if y <= 0:
                    continue
                y = math.log10(y)
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    top = f"{(10 ** y_hi if logy else y_hi):.4g}"
    bottom = f"{(10 ** y_lo if logy else y_lo):.4g}"
    gutter = max(len(top), len(bottom)) + 1

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = top
        elif i == height - 1:
            label = bottom
        else:
            label = ""
        lines.append(f"{label.rjust(gutter)}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    lines.append(
        " " * gutter + f" {x_lo:g}".ljust(width // 2) + f"{x_hi:g}".rjust(width // 2)
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * gutter + " " + legend)
    if ylabel:
        lines.append(" " * gutter + f" (y: {ylabel}, {'log' if logy else 'linear'} scale)")
    return "\n".join(lines)


def chart_from_result(result, x_column: int = 0) -> str:
    """Build a chart from an :class:`~repro.bench.tables.ExperimentResult`.

    Uses column ``x_column`` as the x-axis (when numeric; otherwise the
    row index) and every other numeric column as one series.
    """
    headers = list(result.headers)
    series: Series = {}
    for column in range(len(headers)):
        if column == x_column:
            continue
        rows: List[Tuple[float, float]] = []
        for i, row in enumerate(result.rows):
            y = row[column]
            if not isinstance(y, (int, float)):
                continue
            x = row[x_column] if isinstance(row[x_column], (int, float)) else i
            rows.append((float(x), float(y)))
        if rows:
            series[headers[column]] = rows
    return ascii_chart(series, title=result.title, ylabel="seconds")
