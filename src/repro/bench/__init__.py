"""Experiment harness: regenerate every table and figure of Section 6.

Usage::

    python -m repro.bench            # all experiments, default scale
    python -m repro.bench --scale 1  # bigger proxies, slower

Programmatic use::

    from repro.bench import table1, exp2_vary_delta
    table1(scale=0.5).show()
"""

from .experiments import (
    ablation_scope,
    exp1_aff,
    exp1_unit_updates,
    exp2_temporal,
    exp2_vary_delta,
    exp3_scalability,
    exp4_memory,
    run_all,
    table1,
)
from .plots import ascii_chart, chart_from_result
from .runners import ALL_SETUPS, QueryClassSetup, undirected_view
from .tables import ExperimentResult, format_table

__all__ = [
    "ALL_SETUPS",
    "ExperimentResult",
    "QueryClassSetup",
    "ablation_scope",
    "ascii_chart",
    "chart_from_result",
    "exp1_aff",
    "exp1_unit_updates",
    "exp2_temporal",
    "exp2_vary_delta",
    "exp3_scalability",
    "exp4_memory",
    "format_table",
    "run_all",
    "table1",
    "undirected_view",
]
