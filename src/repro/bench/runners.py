"""Shared plumbing for the experiment harness.

Wraps the five query classes in a uniform :class:`QueryClassSetup` so the
experiment drivers can iterate over them: how to build the batch/
incremental/competitor algorithms, which datasets the paper pairs them
with, and how to derive the query from a graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..algorithms import CCfp, DFSfp, Dijkstra, IncCC, IncDFS, IncLCC, IncSSSP, IncSim, LCCfp, Simfp
from ..baselines import DynCC, DynDFS, DynDij, DynLCC, IncMatch, RRSSSP
from ..generators.patterns import random_pattern
from ..generators.random_graphs import largest_component_root
from ..graph.graph import Graph
from ..metrics.timers import time_call
from .tables import geometric_mean  # noqa: F401  (canonical home; re-exported)


@dataclass
class QueryClassSetup:
    """Everything the harness needs to exercise one query class."""

    name: str
    batch_factory: Callable[[], Any]
    inc_factory: Callable[[], Any]
    competitor_factory: Callable[[], Any]
    unit_competitor_factory: Optional[Callable[[], Any]] = None
    make_query: Callable[[Graph], Any] = lambda graph: None
    undirected_only: bool = False

    def competitor_for_unit_updates(self) -> Any:
        factory = self.unit_competitor_factory or self.competitor_factory
        return factory()


def _sssp_query(graph: Graph) -> Any:
    return largest_component_root(graph)


def _sim_query(graph: Graph) -> Graph:
    return random_pattern(graph, num_nodes=4, num_edges=6, seed=7)


SSSP_SETUP = QueryClassSetup(
    name="SSSP",
    batch_factory=Dijkstra,
    inc_factory=IncSSSP,
    competitor_factory=DynDij,
    unit_competitor_factory=RRSSSP,
    make_query=_sssp_query,
)

CC_SETUP = QueryClassSetup(
    name="CC",
    batch_factory=CCfp,
    inc_factory=IncCC,
    competitor_factory=DynCC,
    make_query=lambda graph: None,
    undirected_only=True,
)

SIM_SETUP = QueryClassSetup(
    name="Sim",
    batch_factory=Simfp,
    inc_factory=IncSim,
    competitor_factory=IncMatch,
    make_query=_sim_query,
)

DFS_SETUP = QueryClassSetup(
    name="DFS",
    batch_factory=DFSfp,
    inc_factory=IncDFS,
    competitor_factory=DynDFS,
    make_query=lambda graph: None,
)

LCC_SETUP = QueryClassSetup(
    name="LCC",
    batch_factory=LCCfp,
    inc_factory=IncLCC,
    competitor_factory=DynLCC,
    make_query=lambda graph: None,
    undirected_only=True,
)

ALL_SETUPS = {
    "SSSP": SSSP_SETUP,
    "CC": CC_SETUP,
    "Sim": SIM_SETUP,
    "DFS": DFS_SETUP,
    "LCC": LCC_SETUP,
}


def undirected_view(graph: Graph) -> Graph:
    """An undirected copy, for CC/LCC on directed datasets."""
    if not graph.directed:
        return graph
    out = Graph(directed=False)
    for v in graph.nodes():
        out.ensure_node(v, label=graph.node_label(v))
    for u, v in graph.edges():
        if not out.has_edge(u, v):
            out.add_edge(u, v, weight=graph.weight(u, v))
    return out


def time_batch(setup: QueryClassSetup, graph: Graph, query: Any) -> float:
    """Seconds for a from-scratch batch run (what recomputation costs)."""
    algo = setup.batch_factory()
    _state, seconds = time_call(algo.run, graph, query)
    return seconds
