"""Command-line entry point: print every experiment table."""

from __future__ import annotations

import argparse
import sys

from .experiments import run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures on proxy datasets.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.3,
        help="dataset scale factor (default 0.3; 1.0 ≈ a few thousand nodes per proxy)",
    )
    parser.add_argument(
        "--plots",
        action="store_true",
        help="also render each table's numeric columns as an ASCII chart",
    )
    args = parser.parse_args(argv)
    for result in run_all(scale=args.scale):
        print(result.format())
        if args.plots and len(result.rows) > 1:
            from .plots import chart_from_result

            print()
            print(chart_from_result(result))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
