"""Figure 6 (a)–(j): unit edge insertions and deletions, per query class.

The paper samples 10000 unit updates per real-life graph and reports the
average time per update for the deduced IncX against the fine-tuned
dynamic competitor (RR, DynCC, IncMatch, DynDFS, DynLCC).  Here each
benchmark times a stream of unit updates on two representative proxy
datasets; the full six-dataset sweep is printed by
``python -m repro.bench`` (exp1_unit_updates).

Shape target: IncX per-unit times are small and roughly flat across
datasets; DynCC-style structures pay heavy per-deletion costs.
"""

import pytest

from _shared import ALL_SETUPS, dataset_graph
from repro.generators import random_updates

N_UPDATES = 20
DATASETS = ["LJ", "TW"]
CLASSES = ["SSSP", "CC", "Sim", "DFS", "LCC"]


def _unit_stream(graph, inserts: bool):
    return list(
        random_updates(
            graph, N_UPDATES, insert_fraction=1.0 if inserts else 0.0, seed=3
        ).unit_batches()
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("query_class", CLASSES)
@pytest.mark.parametrize("inserts", [True, False], ids=["insert", "delete"])
def test_deduced_unit_updates(benchmark, query_class, dataset, inserts):
    benchmark.group = f"fig6-{query_class}-{dataset}-{'ins' if inserts else 'del'}"
    setup = ALL_SETUPS[query_class]
    graph = dataset_graph(dataset, query_class)
    query = setup.make_query(graph)
    units = _unit_stream(graph, inserts)
    state = setup.batch_factory().run(graph.copy(), query)

    def prepare():
        return (setup.inc_factory(), graph.copy(), state.copy()), {}

    def run(algo, g, s):
        for unit in units:
            algo.apply(g, s, unit, query)

    benchmark.pedantic(run, setup=prepare, rounds=3, iterations=1)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("query_class", CLASSES)
@pytest.mark.parametrize("inserts", [True, False], ids=["insert", "delete"])
def test_competitor_unit_updates(benchmark, query_class, dataset, inserts):
    benchmark.group = f"fig6-{query_class}-{dataset}-{'ins' if inserts else 'del'}"
    setup = ALL_SETUPS[query_class]
    graph = dataset_graph(dataset, query_class)
    query = setup.make_query(graph)
    units = _unit_stream(graph, inserts)

    def prepare():
        algo = setup.competitor_for_unit_updates()
        algo.build(graph.copy(), query)
        return (algo,), {}

    def run(algo):
        for unit in units:
            algo.apply(unit)

    benchmark.pedantic(run, setup=prepare, rounds=3, iterations=1)
