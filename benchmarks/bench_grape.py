"""Mini-GRAPE: fragment-parallel fixpoint evaluation cost.

Benchmarks the PIE loop (PEval + incremental IncEval supersteps) against
the sequential batch run, and records superstep/message counts — the
metrics a distributed deployment would tune.  In-process simulation, so
wall-clock measures total work, not parallel speedup; the point is that
the *incremental* IncEval keeps the superstep cost proportional to the
changed border.
"""

import pytest

from _shared import dataset_graph
from repro.algorithms.cc import CCSpec
from repro.algorithms.sssp import SSSPSpec
from repro.core import run_batch
from repro.generators.random_graphs import largest_component_root
from repro.parallel import GrapeRunner, hash_partition

FRAGMENTS = [2, 6]


def _scenario(query_class):
    graph = dataset_graph("FS", query_class)
    if query_class == "SSSP":
        return SSSPSpec(), graph, largest_component_root(graph)
    return CCSpec(), graph, None


@pytest.mark.parametrize("query_class", ["SSSP", "CC"])
def test_sequential_batch(benchmark, query_class):
    benchmark.group = f"grape-{query_class}"
    spec, graph, query = _scenario(query_class)

    def run():
        run_batch(spec, graph, query)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("fragments", FRAGMENTS)
@pytest.mark.parametrize("query_class", ["SSSP", "CC"])
def test_grape_run(benchmark, query_class, fragments):
    benchmark.group = f"grape-{query_class}"
    spec, graph, query = _scenario(query_class)
    partitioning = hash_partition(graph, fragments, seed=3)
    runner = GrapeRunner(spec, seed=3)

    stats_box = {}

    def run():
        _values, stats = runner.run(graph, query, partitioning=partitioning)
        stats_box["stats"] = stats

    benchmark.pedantic(run, rounds=2, iterations=1)
    stats = stats_box["stats"]
    benchmark.extra_info["supersteps"] = stats.supersteps
    benchmark.extra_info["messages"] = stats.messages
    benchmark.extra_info["edge_cut"] = partitioning.edge_cut
