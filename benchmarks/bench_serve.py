#!/usr/bin/env python
"""Serving-layer load benchmarks, recorded to ``BENCH_serve.json``.

Two modes:

``--smoke``
    Fast CI gate, run twice — once over the single-writer session and
    once over a 2-shard :class:`~repro.parallel.ShardedSession` with
    real worker processes: start a server on an ephemeral port, run ~2
    seconds of mixed read/write closed-loop load from concurrent
    clients, then assert (a) the differential isolation check finds
    **zero torn reads** — every served answer equals a from-scratch
    batch recomputation at its reported sequence number, (b) reads and
    writes actually flowed, and (c) the service drains and shuts down
    cleanly.  The sharded pass additionally runs a deletion-heavy mix
    and gates the protocol telemetry: mean scatter round-trips per
    deletion window must stay under :data:`SMOKE_SCATTER_CEILING`.
    Exits non-zero on any failure.

default (full)
    Timed load runs against an in-process server, swept over the shard
    count (1 / 2 / 4 / 8 — ``shards=1`` is the plain single-writer
    session, ``shards>1`` the multi-process sharded tier) and three
    workload mixes per shard count:

    * ``read_heavy`` — 95% reads / 5% writes, the standing-query
      serving regime the snapshot store is built for;
    * ``write_heavy`` — 50% reads / 50% writes, stressing the writer
      window batching and the cross-shard boundary-delta fixpoint;
    * ``delete_heavy`` — 50% reads / 50% writes with writers biased to
      0.75 deletions, the raise-protocol regime whose scatter counts
      the batched invalidate/settle/reconcile exchange is built to cut.

    Each records throughput (ops/s) and read/write latency percentiles
    (p50/p99) plus the service's own window counters — and, for sharded
    runs, the ``ProtocolStats`` block (scatters per deletion window,
    skipped exchanges, dup-suppressed resets, bytes shipped).  Every mix
    is gated on zero isolation violations, and a ``split_micro`` row
    times the router's memoized ownership lookup against raw
    ``stable_assign``.  Results are appended as one tagged run to the
    registry ledger at ``benchmarks/results/serve.json`` (see
    ``docs/evaluation.md``); ``repro bench run serve`` drives the same
    suite at named scales.

    Caveat for reading the shard sweep: sharding buys wall-clock
    throughput only when worker processes run on distinct cores.  On a
    single-core host the sweep instead measures pure protocol overhead
    (every superstep serialized), so the recorded numbers there are an
    upper bound on coordination cost, not a scaling curve.
"""

from __future__ import annotations

import argparse
import os
import sys

from _shared import record_results

from repro.generators import assign_weights, erdos_renyi
from repro.parallel import ShardedSession
from repro.serve import QueryServer, QueryService, ServiceConfig, run_load, verify_isolation
from repro.session import DynamicGraphSession

QUERIES = {"cc": ("CC", None), "sssp": ("SSSP", 0), "sswp": ("SSWP", 0)}

SHARD_SWEEP = (1, 2, 4, 8)


def make_graph(edges: int, seed: int = 7):
    n = max(edges // 10, 8)
    return assign_weights(erdos_renyi(n, edges, directed=False, seed=seed), seed=seed)


def start_server(edges: int, queue_size: int = 256, shards: int = 1):
    graph = make_graph(edges)
    if shards == 1:
        session = DynamicGraphSession(graph)
    else:
        session = ShardedSession(graph, shards, processes=True)
    service = QueryService(session, ServiceConfig(queue_size=queue_size))
    for name, (algorithm, query) in QUERIES.items():
        service.register(name, algorithm, query=query)
    service.start()
    server = QueryServer(service, port=0).start()
    return graph, service, server


def run_mix(
    server,
    service,
    graph,
    *,
    name,
    shards,
    read_fraction,
    duration,
    threads,
    seed,
    delete_bias=0.4,
):
    host, port = server.address
    base_seq = service.session.seq
    base_graph = service.session.graph.copy()
    service.stats(reset_window=True)  # roll the window so counters are per-mix
    report = run_load(
        host,
        port,
        list(QUERIES),
        duration=duration,
        read_fraction=read_fraction,
        threads=threads,
        base_nodes=list(graph.nodes())[:32],
        seed=seed,
        delete_bias=delete_bias,
    )
    violations = verify_isolation(base_graph, QUERIES, report, base_seq=base_seq)
    stats = service.stats(reset_window=True)
    window = stats["window"]
    summary = report.summary()
    entry = {
        "name": name,
        "shards": shards,
        "edges": graph.num_edges,
        "nodes": graph.num_nodes,
        "threads": threads,
        "read_fraction": read_fraction,
        "delete_bias": delete_bias,
        "reads": report.reads,
        "writes": report.writes,
        "throughput_ops_s": summary["throughput_ops_s"],
        "read_p50_ms": round(summary["read_latency_s"]["p50"] * 1e3, 3),
        "read_p99_ms": round(summary["read_latency_s"]["p99"] * 1e3, 3),
        "write_p50_ms": round(summary["write_latency_s"]["p50"] * 1e3, 3),
        "write_p99_ms": round(summary["write_latency_s"]["p99"] * 1e3, 3),
        "windows": window["windows"],
        "shed_overloaded": window["shed_overloaded"],
        "shed_deadline": window["shed_deadline"],
        "isolation_violations": len(violations),
    }
    protocol = stats.get("protocol")
    if protocol is not None:
        proto = protocol["window"]
        entry.update(
            {
                "scatters": proto["scatters"],
                "deletion_windows": proto["deletion_windows"],
                "scatters_per_deletion_window": proto["scatters_per_deletion_window"],
                "skipped_exchanges": proto["skipped_exchanges"],
                "suspect_resets": proto["suspect_resets"],
                "central_resets": proto["central_resets"],
                "dup_suppressed": proto["dup_suppressed"],
                "settle_changes": proto["settle_changes"],
                "full_resyncs": proto["full_resyncs"],
                "bytes_shipped": proto["bytes_shipped"],
            }
        )
    line = (
        f"{name:12s} shards={shards}  {entry['throughput_ops_s']:10.0f} ops/s  "
        f"read p50 {entry['read_p50_ms']:.2f}ms p99 {entry['read_p99_ms']:.2f}ms  "
        f"write p50 {entry['write_p50_ms']:.2f}ms p99 {entry['write_p99_ms']:.2f}ms  "
        f"violations={len(violations)}"
    )
    if protocol is not None:
        line += (
            f"  scatters/del-window {entry['scatters_per_deletion_window']:.2f} "
            f"(skipped={entry['skipped_exchanges']}, dups={entry['dup_suppressed']})"
        )
    print(line)
    return entry, violations


def _check_entry(name: str, entry, violations) -> bool:
    if violations:
        for violation in violations[:5]:
            print(f"FAIL: {violation}", file=sys.stderr)
        return False
    if entry["reads"] == 0 or entry["writes"] == 0:
        print(
            f"FAIL: {name} degenerate load "
            f"(reads={entry['reads']}, writes={entry['writes']})",
            file=sys.stderr,
        )
        return False
    return True


#: CI regression ceiling on mean scatter round-trips per deletion window
#: in the sharded smoke mix.  The batched protocol budgets apply (1) +
#: invalidation wave (~1) + reconcile (1) ≈ 3, and interior deletion
#: windows skip the exchange at 1; PR 7's wave-per-superstep protocol
#: measured ~10, so a regression back to per-round scattering trips this
#: immediately.
SMOKE_SCATTER_CEILING = 3.5


def smoke(duration: float = 2.0, collect=None) -> int:
    """The CI gate.  ``collect`` (a list) receives the measured rows so
    ``repro bench run serve --scale smoke`` can record the checked run."""
    for shards in (1, 2):
        graph, service, server = start_server(edges=400, shards=shards)
        try:
            entry, violations = run_mix(
                server,
                service,
                graph,
                name="smoke",
                shards=shards,
                read_fraction=0.8,
                duration=duration,
                threads=8,
                seed=17,
            )
            if not _check_entry(f"smoke shards={shards}", entry, violations):
                return 1
            if collect is not None:
                collect.append(entry)
            if shards > 1:
                deletion, violations = run_mix(
                    server,
                    service,
                    graph,
                    name="smoke_delete",
                    shards=shards,
                    read_fraction=0.5,
                    duration=duration,
                    threads=8,
                    seed=23,
                    delete_bias=0.75,
                )
                if not _check_entry(f"smoke_delete shards={shards}", deletion, violations):
                    return 1
                if collect is not None:
                    collect.append(deletion)
                if deletion["deletion_windows"] == 0:
                    print(
                        "FAIL: deletion-heavy smoke produced no deletion windows",
                        file=sys.stderr,
                    )
                    return 1
                per_window = deletion["scatters_per_deletion_window"]
                if per_window > SMOKE_SCATTER_CEILING:
                    print(
                        f"FAIL: {per_window:.2f} scatters per deletion window "
                        f"(ceiling {SMOKE_SCATTER_CEILING}): the batched "
                        "deletion protocol has regressed",
                        file=sys.stderr,
                    )
                    return 1
                print(
                    f"scatter gate OK: {per_window:.2f} scatters/deletion-window "
                    f"over {deletion['deletion_windows']} deletion windows "
                    f"(ceiling {SMOKE_SCATTER_CEILING})"
                )
        finally:
            server.stop()
            service.close()
        if not service.closed:
            print("FAIL: service did not close cleanly", file=sys.stderr)
            return 1
        print(
            f"smoke OK ({shards} shard{'s' if shards > 1 else ''}): "
            f"{entry['reads']} reads / {entry['writes']} writes, "
            "0 isolation violations, clean shutdown"
        )
    return 0


def split_micro(edges: int = 2_000, shards: int = 4, repeats: int = 50):
    """Micro-benchmark the split path's per-endpoint ownership lookup:
    the router's session-level dict memo against the raw (lru_cached,
    md5-hashing on miss) ``stable_assign`` it fronts."""
    from time import perf_counter

    from repro.parallel.partition import stable_assign

    graph = make_graph(edges)
    session = ShardedSession(graph, shards, processes=False)
    try:
        ids = list(graph.nodes())
        start = perf_counter()
        for _ in range(repeats):
            for node in ids:
                session._owner(node)
        memo_s = perf_counter() - start
        start = perf_counter()
        for _ in range(repeats):
            for node in ids:
                stable_assign(node, shards, session.seed)
        lru_s = perf_counter() - start
    finally:
        session.close()
    lookups = repeats * len(ids)
    entry = {
        "name": "split_micro",
        "shards": shards,
        "lookups": lookups,
        "owner_memo_ns": round(memo_s / lookups * 1e9, 1),
        "stable_assign_ns": round(lru_s / lookups * 1e9, 1),
        "memo_speedup": round(lru_s / memo_s, 2) if memo_s > 0 else 0.0,
    }
    print(
        f"split_micro  shards={shards}  owner memo {entry['owner_memo_ns']:.0f}ns  "
        f"stable_assign {entry['stable_assign_ns']:.0f}ns  "
        f"({entry['memo_speedup']:.2f}x)"
    )
    return entry


def run_full(
    shards_sweep=SHARD_SWEEP,
    duration: float = 4.0,
    threads: int = 8,
    edges: int = 2_000,
    with_split_micro: bool = True,
):
    """The timed shard × mix sweep; returns registry rows.

    Raises :class:`RuntimeError` when any mix fails its isolation or
    degenerate-load check — a sweep with torn reads must never be
    recorded as a performance number.
    """
    results = []
    seed = 29
    for shards in shards_sweep:
        graph, service, server = start_server(edges=edges, shards=shards)
        try:
            for name, read_fraction, delete_bias in (
                ("read_heavy", 0.95, 0.4),
                ("write_heavy", 0.5, 0.4),
                ("delete_heavy", 0.5, 0.75),
            ):
                entry, violations = run_mix(
                    server,
                    service,
                    graph,
                    name=name,
                    shards=shards,
                    read_fraction=read_fraction,
                    duration=duration,
                    threads=threads,
                    seed=seed,
                    delete_bias=delete_bias,
                )
                seed += 1
                if not _check_entry(f"{name} shards={shards}", entry, violations):
                    raise RuntimeError(f"{name} shards={shards} failed its checks")
                results.append(entry)
        finally:
            server.stop()
            service.close()

    baseline = next(
        (e for e in results if e["name"] == "write_heavy" and e["shards"] == 1), None
    )
    if baseline:
        print(f"\nwrite-heavy scaling vs 1 shard ({os.cpu_count()} CPU core(s) visible):")
        for entry in results:
            if entry["name"] != "write_heavy":
                continue
            ratio = entry["throughput_ops_s"] / baseline["throughput_ops_s"]
            print(f"  shards={entry['shards']}: {ratio:5.2f}x")

    if with_split_micro:
        results.append(split_micro(edges=edges))
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fast CI isolation gate")
    parser.add_argument("--duration", type=float, default=4.0, help="seconds per mix")
    parser.add_argument("--threads", type=int, default=8, help="client threads")
    parser.add_argument("--edges", type=int, default=2_000, help="base graph size")
    parser.add_argument(
        "--shards",
        type=int,
        nargs="*",
        default=list(SHARD_SWEEP),
        help="shard counts to sweep (full mode)",
    )
    parser.add_argument("--tag", default=None, help="registry run tag")
    args = parser.parse_args()
    if args.smoke:
        return smoke()

    try:
        results = run_full(
            tuple(args.shards),
            duration=args.duration,
            threads=args.threads,
            edges=args.edges,
        )
    except RuntimeError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    record = record_results("serve", results, tag=args.tag)
    print(f"recorded serve run {record.run}" + (f" [{record.tag}]" if record.tag else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
