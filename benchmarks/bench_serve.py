#!/usr/bin/env python
"""Serving-layer load benchmarks, recorded to ``BENCH_serve.json``.

Two modes:

``--smoke``
    Fast CI gate: start a server on an ephemeral port, run ~2 seconds
    of mixed read/write closed-loop load from concurrent clients, then
    assert (a) the differential isolation check finds **zero torn
    reads** — every served answer equals a from-scratch batch
    recomputation at its reported WAL sequence number, (b) reads and
    writes actually flowed, and (c) the service drains and shuts down
    cleanly.  Exits non-zero on any failure.

default (full)
    Timed load runs against an in-process server, one per workload mix:

    * ``read_heavy`` — 95% reads / 5% writes, the standing-query
      serving regime the snapshot store is built for;
    * ``write_heavy`` — 50% reads / 50% writes, stressing the writer
      window batching and admission queue.

    Each records throughput (ops/s) and read/write latency percentiles
    (p50/p99) plus the service's own window counters.  The JSON file is
    append-only across PRs: each invocation keeps earlier runs' rows
    and appends its own under the next run number.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.generators import assign_weights, erdos_renyi
from repro.serve import QueryServer, QueryService, ServiceConfig, run_load, verify_isolation
from repro.session import DynamicGraphSession

QUERIES = {"cc": ("CC", None), "sssp": ("SSSP", 0), "sswp": ("SSWP", 0)}


def make_graph(edges: int, seed: int = 7):
    n = max(edges // 10, 8)
    return assign_weights(erdos_renyi(n, edges, directed=False, seed=seed), seed=seed)


def start_server(edges: int, queue_size: int = 256):
    graph = make_graph(edges)
    service = QueryService(DynamicGraphSession(graph), ServiceConfig(queue_size=queue_size))
    for name, (algorithm, query) in QUERIES.items():
        service.register(name, algorithm, query=query)
    service.start()
    server = QueryServer(service, port=0).start()
    return graph, service, server


def run_mix(server, service, graph, *, name, read_fraction, duration, threads, seed):
    host, port = server.address
    base_seq = service.session.seq
    base_graph = service.session.graph.copy()
    service.stats(reset_window=True)  # roll the window so counters are per-mix
    report = run_load(
        host,
        port,
        list(QUERIES),
        duration=duration,
        read_fraction=read_fraction,
        threads=threads,
        base_nodes=list(graph.nodes())[:32],
        seed=seed,
    )
    violations = verify_isolation(base_graph, QUERIES, report, base_seq=base_seq)
    window = service.stats(reset_window=True)["window"]
    summary = report.summary()
    entry = {
        "name": name,
        "edges": graph.num_edges,
        "nodes": graph.num_nodes,
        "threads": threads,
        "read_fraction": read_fraction,
        "reads": report.reads,
        "writes": report.writes,
        "throughput_ops_s": summary["throughput_ops_s"],
        "read_p50_ms": round(summary["read_latency_s"]["p50"] * 1e3, 3),
        "read_p99_ms": round(summary["read_latency_s"]["p99"] * 1e3, 3),
        "write_p50_ms": round(summary["write_latency_s"]["p50"] * 1e3, 3),
        "write_p99_ms": round(summary["write_latency_s"]["p99"] * 1e3, 3),
        "windows": window["windows"],
        "shed_overloaded": window["shed_overloaded"],
        "shed_deadline": window["shed_deadline"],
        "isolation_violations": len(violations),
    }
    print(
        f"{name:12s} {entry['throughput_ops_s']:10.0f} ops/s  "
        f"read p50 {entry['read_p50_ms']:.2f}ms p99 {entry['read_p99_ms']:.2f}ms  "
        f"write p50 {entry['write_p50_ms']:.2f}ms p99 {entry['write_p99_ms']:.2f}ms  "
        f"violations={len(violations)}"
    )
    return entry, violations


def smoke() -> int:
    graph, service, server = start_server(edges=400)
    try:
        entry, violations = run_mix(
            server,
            service,
            graph,
            name="smoke",
            read_fraction=0.8,
            duration=2.0,
            threads=8,
            seed=17,
        )
        if violations:
            for violation in violations[:5]:
                print(f"FAIL: {violation}", file=sys.stderr)
            return 1
        if entry["reads"] == 0 or entry["writes"] == 0:
            print(
                f"FAIL: degenerate load (reads={entry['reads']}, writes={entry['writes']})",
                file=sys.stderr,
            )
            return 1
    finally:
        server.stop()
        service.close()
    if not service.closed:
        print("FAIL: service did not close cleanly", file=sys.stderr)
        return 1
    print(
        f"smoke OK: {entry['reads']} reads / {entry['writes']} writes, "
        "0 isolation violations, clean shutdown"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fast CI isolation gate")
    parser.add_argument("--duration", type=float, default=4.0, help="seconds per mix")
    parser.add_argument("--threads", type=int, default=8, help="client threads")
    parser.add_argument("--edges", type=int, default=2_000, help="base graph size")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
        help="output JSON path (full mode)",
    )
    args = parser.parse_args()
    if args.smoke:
        return smoke()

    graph, service, server = start_server(edges=args.edges)
    results = []
    try:
        for seed, (name, read_fraction) in enumerate(
            (("read_heavy", 0.95), ("write_heavy", 0.5)), start=29
        ):
            entry, violations = run_mix(
                server,
                service,
                graph,
                name=name,
                read_fraction=read_fraction,
                duration=args.duration,
                threads=args.threads,
                seed=seed,
            )
            if violations:
                for violation in violations[:5]:
                    print(f"FAIL: {violation}", file=sys.stderr)
                return 1
            if entry["reads"] == 0 or entry["writes"] == 0:
                print(
                    f"FAIL: {name} degenerate load "
                    f"(reads={entry['reads']}, writes={entry['writes']})",
                    file=sys.stderr,
                )
                return 1
            results.append(entry)
    finally:
        server.stop()
        service.close()

    existing = []
    if args.out.exists():
        existing = json.loads(args.out.read_text()).get("results", [])
    run = max((entry.get("run", 1) for entry in existing), default=0) + 1
    for entry in results:
        entry["run"] = run

    payload = {
        "schema": 1,
        "suite": "serve",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": existing + results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out} (run {run})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
