"""Ablation: push-based vs pull-based step-function propagation.

DESIGN.md motivates the engine's push mode — relaxing one dependent per
edge instead of re-pulling whole input sets — as the schedule real
Dijkstra/min-label implementations use.  This ablation quantifies it on
the batch run and on incremental maintenance (hub re-evaluation is the
pull engine's weak spot on power-law proxies).
"""

import pytest

from _shared import dataset_graph
from repro.algorithms.sssp import SSSPSpec
from repro.core import run_batch
from repro.core.incremental import IncrementalAlgorithm
from repro.generators import random_updates
from repro.generators.random_graphs import largest_component_root


class PullSSSPSpec(SSSPSpec):
    """SSSP with push propagation disabled (pure pull re-evaluation)."""

    supports_push = False

    def relaxation_pairs(self, delta, graph_new, query):
        return None  # full seed evaluation as well


def _scenario():
    graph = dataset_graph("FS", "SSSP")
    query = largest_component_root(graph)
    delta = random_updates(graph, max(1, graph.size // 25), seed=7)
    return graph, query, delta


@pytest.mark.parametrize("mode", ["push", "pull"])
def test_batch_run(benchmark, mode):
    benchmark.group = "ablation-push-batch"
    graph, query, _delta = _scenario()
    spec = SSSPSpec() if mode == "push" else PullSSSPSpec()

    def run():
        run_batch(spec, graph, query)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("mode", ["push", "pull"])
def test_incremental_apply(benchmark, mode):
    benchmark.group = "ablation-push-incremental"
    graph, query, delta = _scenario()
    spec = SSSPSpec() if mode == "push" else PullSSSPSpec()
    state = run_batch(spec, graph.copy(), query)

    def prepare():
        return (IncrementalAlgorithm(spec), graph.copy(), state.copy()), {}

    def run(algo, g, s):
        algo.apply(g, s, delta, query)

    benchmark.pedantic(run, setup=prepare, rounds=3, iterations=1)
