"""Figure 7 (c): CC under batch updates on the OKT proxy.

Paper shape: IncCC beats CC_fp up to 32% and beats DynCC dramatically on
batches (DynCC processes unit updates one by one and even loses to the
batch recomputation at large |ΔG|).
"""

import pytest

from _shared import bench_batch_rerun, bench_competitor, bench_incremental, prepared
from repro.baselines import UnitLoop
from repro.bench.runners import ALL_SETUPS

PERCENTAGES = [0.04, 0.16, 0.64]


@pytest.mark.parametrize("pct", PERCENTAGES)
def test_batch_ccfp(benchmark, pct):
    benchmark.group = f"fig7-CC-OKT-{int(pct * 100)}pct"
    bench_batch_rerun(benchmark, "CC", prepared("OKT", "CC", pct))


@pytest.mark.parametrize("pct", PERCENTAGES)
def test_inccc(benchmark, pct):
    benchmark.group = f"fig7-CC-OKT-{int(pct * 100)}pct"
    bench_incremental(benchmark, "CC", prepared("OKT", "CC", pct))


@pytest.mark.parametrize("pct", [0.04, 0.16])
def test_inccc_n(benchmark, pct):
    benchmark.group = f"fig7-CC-OKT-{int(pct * 100)}pct"
    bench_incremental(
        benchmark,
        "CC",
        prepared("OKT", "CC", pct),
        inc_factory=lambda: UnitLoop(ALL_SETUPS["CC"].inc_factory()),
    )


@pytest.mark.parametrize("pct", PERCENTAGES)
def test_dyncc(benchmark, pct):
    benchmark.group = f"fig7-CC-OKT-{int(pct * 100)}pct"
    bench_competitor(benchmark, "CC", prepared("OKT", "CC", pct))
