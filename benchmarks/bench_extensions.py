"""Extensions of the class Φ (SSWP, Reach, Coreness) — batch vs deduced.

Not part of the paper's evaluation; these benchmark the framework on
the query classes we added per the paper's "extending Φ" future work,
using the same batch-vs-incremental protocol as Figure 7.
"""

import pytest

from _shared import dataset_graph
from repro.algorithms.bc import BCfp, IncBC
from repro.algorithms.coreness import CorenessFp, IncCoreness
from repro.algorithms.reach import IncReach, Reachability
from repro.algorithms.sswp import IncSSWP, WidestPath
from repro.generators import random_updates
from repro.generators.random_graphs import largest_component_root
from repro.graph import updated_copy

PAIRS = {
    "SSWP": (WidestPath, IncSSWP, "TW", True),
    "Reach": (Reachability, IncReach, "TW", True),
    "Coreness": (CorenessFp, IncCoreness, "OKT", False),
    "BC": (BCfp, IncBC, "LJ", False),
}
DELTA = 0.02


def _scenario(name):
    batch_factory, inc_factory, dataset, needs_source = PAIRS[name]
    query_class = "CC" if not needs_source else "SSSP"  # reuse directedness handling
    graph = dataset_graph(dataset, query_class)
    query = largest_component_root(graph) if needs_source else None
    state = batch_factory().run(graph.copy(), query)
    delta = random_updates(graph, max(1, int(DELTA * graph.size)), seed=5)
    return batch_factory, inc_factory, graph, query, state, delta


@pytest.mark.parametrize("name", list(PAIRS))
def test_batch_recompute(benchmark, name):
    benchmark.group = f"extensions-{name}"
    batch_factory, _inc, graph, query, _state, delta = _scenario(name)
    new_graph = updated_copy(graph, delta)

    def run():
        batch_factory().run(new_graph, query)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("name", list(PAIRS))
def test_deduced_incremental(benchmark, name):
    import copy

    benchmark.group = f"extensions-{name}"
    _batch, inc_factory, graph, query, state, delta = _scenario(name)
    clone = state.copy if hasattr(state, "copy") else (lambda: copy.deepcopy(state))

    def prepare():
        return (inc_factory(), graph.copy(), clone(), delta, query), {}

    def run(algo, g, s, d, q):
        algo.apply(g, s, d, q)

    benchmark.pedantic(run, setup=prepare, rounds=3, iterations=1)
