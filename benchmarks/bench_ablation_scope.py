"""Ablation (DESIGN.md §5): the Figure-4 scope function vs Theorem 1's reset.

The brute-force deducible IncCC of Example 2 resets every PE variable —
entire components — on a deletion; the bounded h of Figure 4 repairs
only along broken anchor chains.  This is the paper's own motivating
pathology for Section 4 (``NaiveIncCC`` vs ``IncCC``), and the second
ablation contrasts batch application with the unit-update loop.
"""

import pytest

from _shared import dataset_graph
from repro.algorithms import CCfp, IncCC
from repro.algorithms.cc import NaiveIncCC
from repro.baselines import UnitLoop
from repro.generators import random_updates


def _scenario(n_deletions=4):
    graph = dataset_graph("OKT", "CC", 0.25)
    state = CCfp().run(graph.copy())
    delta = random_updates(graph, n_deletions, insert_fraction=0.0, seed=81)
    return graph, state, delta


@pytest.mark.parametrize(
    "factory", [IncCC, NaiveIncCC], ids=["figure4-h", "example2-reset"]
)
def test_scope_function_vs_pe_reset(benchmark, factory):
    benchmark.group = "ablation-scope-function"
    graph, state, delta = _scenario()

    def prepare():
        return (factory(), graph.copy(), state.copy()), {}

    def run(algo, g, s):
        algo.apply(g, s, delta)

    benchmark.pedantic(run, setup=prepare, rounds=3, iterations=1)


@pytest.mark.parametrize(
    "batched", [True, False], ids=["whole-batch", "unit-at-a-time"]
)
def test_batching_ablation(benchmark, batched):
    benchmark.group = "ablation-batching"
    graph = dataset_graph("OKT", "CC", 0.25)
    state = CCfp().run(graph.copy())
    delta = random_updates(graph, max(1, graph.size // 50), seed=82)

    def prepare():
        algo = IncCC() if batched else UnitLoop(IncCC())
        return (algo, graph.copy(), state.copy()), {}

    def run(algo, g, s):
        algo.apply(g, s, delta)

    benchmark.pedantic(run, setup=prepare, rounds=3, iterations=1)
