"""Figure 7 (a)–(b): SSSP under batch updates of growing |ΔG| (FS, TW).

Paper shape: IncSSSP beats Dijkstra up to |ΔG| ≈ 32%, beats IncSSSP_n by
20–31×, and tracks DynDij within a small factor with the gap closing as
|ΔG| grows.
"""

import pytest

from _shared import bench_batch_rerun, bench_competitor, bench_incremental, prepared
from repro.baselines import UnitLoop
from repro.bench.runners import ALL_SETUPS

PERCENTAGES = [0.02, 0.08, 0.32]
DATASETS = ["FS", "TW"]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("pct", PERCENTAGES)
def test_batch_dijkstra(benchmark, dataset, pct):
    benchmark.group = f"fig7-SSSP-{dataset}-{int(pct * 100)}pct"
    bench_batch_rerun(benchmark, "SSSP", prepared(dataset, "SSSP", pct))


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("pct", PERCENTAGES)
def test_incsssp(benchmark, dataset, pct):
    benchmark.group = f"fig7-SSSP-{dataset}-{int(pct * 100)}pct"
    bench_incremental(benchmark, "SSSP", prepared(dataset, "SSSP", pct))


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("pct", [0.02, 0.08])  # the _n variant is slow by design
def test_incsssp_n(benchmark, dataset, pct):
    benchmark.group = f"fig7-SSSP-{dataset}-{int(pct * 100)}pct"
    bench_incremental(
        benchmark,
        "SSSP",
        prepared(dataset, "SSSP", pct),
        inc_factory=lambda: UnitLoop(ALL_SETUPS["SSSP"].inc_factory()),
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("pct", PERCENTAGES)
def test_dyndij(benchmark, dataset, pct):
    benchmark.group = f"fig7-SSSP-{dataset}-{int(pct * 100)}pct"
    bench_competitor(benchmark, "SSSP", prepared(dataset, "SSSP", pct))
