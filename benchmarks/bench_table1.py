"""Table 1: batch A vs fine-tuned competitor vs deduced A_Δ at |ΔG| = 4%.

Paper reference numbers (73.7M-node graph, C++):

    SSSP: 4.57s (Dijkstra)  / 1.56s (DynDij)   / 0.88s (IncSSSP)
    Sim:  4.86s (Sim_fp)    / 1.03s (IncMatch) / 0.98s (IncSim)
    LCC:  78.1s (LCC_fp)    / 18.6s (DynLCC)   / 12.0s (IncLCC)

Shape target: the deduced A_Δ beats its batch counterpart; competitors
are in the same order of magnitude (see EXPERIMENTS.md for deviations).
"""

import pytest

from _shared import bench_batch_rerun, bench_competitor, bench_incremental, prepared

DELTA = 0.04


@pytest.mark.parametrize("query_class", ["SSSP", "Sim", "LCC"])
def test_batch_recompute(benchmark, query_class):
    benchmark.group = f"table1-{query_class}"
    bench_batch_rerun(benchmark, query_class, prepared("FS", query_class, DELTA))


@pytest.mark.parametrize("query_class", ["SSSP", "Sim", "LCC"])
def test_competitor(benchmark, query_class):
    benchmark.group = f"table1-{query_class}"
    bench_competitor(benchmark, query_class, prepared("FS", query_class, DELTA))


@pytest.mark.parametrize("query_class", ["SSSP", "Sim", "LCC"])
def test_deduced_incremental(benchmark, query_class):
    benchmark.group = f"table1-{query_class}"
    bench_incremental(benchmark, query_class, prepared("FS", query_class, DELTA))
