#!/usr/bin/env python
"""Generic-vs-kernel engine benchmarks, recorded to ``BENCH_kernels.json``.

Two modes:

``--smoke``
    Fast CI gate: for every kernelized spec, assert the dense kernel
    path is actually selectable (no silent fallback) and that forced
    kernel runs — batch and incremental — produce exactly the generic
    engine's values.  Also asserts that on a small random unit stream
    the *sparse* drain really drains sparse (never silently falls back
    to a dense full-graph sweep) and that the stream scheduler reaches
    the generic fixpoint.  Exits non-zero on any failure.

default (full)
    Timed comparison, written as JSON:

    * batch SSSP and CC at 10k / 100k edges (Erdős–Rényi, average
      degree ~20 — social-network-like density);
    * incremental SSSP unit-update streams at both scales, two shapes:
      a *random* stream (tiny affected sets: the paper's locality claim,
      where the generic engine is already near-optimal) and a
      *flap* stream alternately deleting/re-inserting the heaviest
      shortest-path-tree edges (large repair cascades, where the dense
      arrays pay off).  Each stream is timed per-op under the generic
      engine, the kernel engine at every drain tier (auto / forced
      sparse / forced dense), and once more through the coalescing
      stream scheduler (``apply_stream``); per-op touched-node counters
      from ``kernel_stats`` are recorded so |AFF|-proportionality is
      auditable next to the wall-clock numbers.

    Every timed configuration also asserts value equality between the
    engines, so the recorded speedups are for identical answers.

Results are appended to the run registry at ``benchmarks/results/``
(see ``docs/evaluation.md``): each invocation becomes one tagged run in
the suite's append-only ledger, so the speedup trajectory across PRs
stays visible.  ``repro bench run kernels`` drives the same suite at
named scales.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import defaultdict

from _shared import record_results

from repro.algorithms.cc import CCSpec, IncCC
from repro.algorithms.reach import IncReach, ReachSpec
from repro.algorithms.sssp import IncSSSP, SSSPSpec
from repro.algorithms.sswp import IncSSWP, SSWPSpec
from repro.core import run_batch
from repro.generators import assign_weights, erdos_renyi, random_updates
from repro.graph import Batch, EdgeDeletion, EdgeInsertion
from repro.kernels.engine import unsupported_reason

INF = float("inf")


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------
def best_of(fn, repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` runs (after one warmup)."""
    fn()
    best = INF
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sssp_graph(edges: int, seed: int = 7):
    n = max(edges // 20, 4)
    return assign_weights(erdos_renyi(n, edges, directed=True, seed=seed), seed=seed)


def cc_graph(edges: int, seed: int = 7):
    n = max(edges // 20, 4)
    return erdos_renyi(n, edges, directed=False, seed=seed)


# ----------------------------------------------------------------------
# Update streams
# ----------------------------------------------------------------------
def random_stream(graph, ops: int, seed: int = 3):
    """Unit updates sampled uniformly — the paper's locality regime."""
    return list(random_updates(graph, ops, seed=seed))


def flap_stream(graph, query, ops: int):
    """Alternately delete/re-insert the heaviest shortest-path-tree edges.

    "Heaviest" by subtree size: these are the unit updates with the
    largest affected sets (`AFF`), the adversarial end of the unit-update
    spectrum.
    """
    state = run_batch(SSSPSpec(), graph, query)
    values = state.values
    parent = {}
    for v in graph.nodes():
        dv = values[v]
        if dv == INF or v == query:
            continue
        for u, w in graph.in_items(v):
            if values[u] + w == dv:
                parent[v] = (u, w)
                break
    children = defaultdict(list)
    for v, (u, _w) in parent.items():
        children[u].append(v)
    sizes = {}
    stack = [(query, False)]
    while stack:
        v, done = stack.pop()
        if done:
            sizes[v] = 1 + sum(sizes[c] for c in children.get(v, []))
        else:
            stack.append((v, True))
            stack.extend((c, False) for c in children.get(v, []))
    top = sorted(((sizes.get(v, 1), v) for v in parent), reverse=True)[:10]
    flap = [(parent[v][0], v, parent[v][1]) for _, v in top]
    stream = []
    for i in range(ops // 2):
        u, v, w = flap[i % len(flap)]
        stream.append(EdgeDeletion(u, v))
        stream.append(EdgeInsertion(u, v, weight=w))
    return stream


def run_stream(graph, query, stream, engine: str, drain: str = "auto"):
    """Apply ``stream`` as unit batches.

    Returns ``(seconds, final values, per-op touched counts)`` — the
    touched counts come from ``kernel_stats`` (kernel engine) or the
    change/scope sets (generic), i.e. :attr:`IncrementalResult.affected_size`.
    """
    work = graph.copy()
    state = run_batch(SSSPSpec(), work, query, engine="generic")
    algo = IncSSSP(engine=engine)
    algo.drain = drain
    touched = []
    t0 = time.perf_counter()
    for op in stream:
        touched.append(algo.apply(work, state, Batch([op]), query).affected_size)
    return time.perf_counter() - t0, dict(state.values), touched


def run_scheduled(graph, query, stream):
    """Drive the same stream through the coalescing scheduler.

    Returns ``(seconds, final values, StreamResult)``.
    """
    work = graph.copy()
    state = run_batch(SSSPSpec(), work, query, engine="generic")
    algo = IncSSSP()
    t0 = time.perf_counter()
    sched = algo.apply_stream(work, state, [Batch([op]) for op in stream], query)
    return time.perf_counter() - t0, dict(state.values), sched


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------
def bench_batch(results, edges: int, repeats: int):
    for name, spec, graph, query in (
        ("batch_sssp", SSSPSpec(), sssp_graph(edges), 0),
        ("batch_cc", CCSpec(), cc_graph(edges), None),
    ):
        generic = run_batch(spec, graph, query, engine="generic")
        kernel = run_batch(spec, graph, query, engine="kernel")
        assert kernel.values == generic.values, f"{name}@{edges}: values diverge"
        generic_s = best_of(lambda: run_batch(spec, graph, query, engine="generic"), repeats)
        kernel_s = best_of(lambda: run_batch(spec, graph, query, engine="kernel"), repeats)
        entry = {
            "name": name,
            "edges": edges,
            "nodes": graph.num_nodes,
            "generic_ms": round(generic_s * 1e3, 2),
            "kernel_ms": round(kernel_s * 1e3, 2),
            "speedup": round(generic_s / kernel_s, 2),
        }
        results.append(entry)
        print(f"{name:24s} m={edges:<7d} generic {entry['generic_ms']:8.1f}ms  "
              f"kernel {entry['kernel_ms']:8.1f}ms  {entry['speedup']:.2f}x")


def bench_incremental(results, edges: int, ops: int):
    graph = sssp_graph(edges)
    for shape, stream in (
        ("random", random_stream(graph, ops)),
        ("flap", flap_stream(graph, 0, ops)),
    ):
        generic_s, generic_values, generic_touched = run_stream(graph, 0, stream, "generic")
        tiers = {}
        for label, drain in (("kernel", "auto"), ("sparse", "sparse"), ("dense", "dense")):
            s, values, touched = run_stream(graph, 0, stream, "kernel", drain=drain)
            assert values == generic_values, f"inc {shape}@{edges} [{label}]: values diverge"
            tiers[label] = (s, touched)
        sched_s, sched_values, sched = run_scheduled(graph, 0, stream)
        assert sched_values == generic_values, f"inc {shape}@{edges} [sched]: values diverge"

        kernel_s, kernel_touched = tiers["kernel"]
        entry = {
            "name": f"inc_sssp_unit_{shape}",
            "edges": edges,
            "nodes": graph.num_nodes,
            "ops": len(stream),
            "generic_ms": round(generic_s * 1e3, 2),
            "kernel_ms": round(kernel_s * 1e3, 2),
            "sparse_ms": round(tiers["sparse"][0] * 1e3, 2),
            "dense_ms": round(tiers["dense"][0] * 1e3, 2),
            "sched_ms": round(sched_s * 1e3, 2),
            # Headline: generic per-op baseline vs the scheduler-driven
            # pipeline (coalescing + AFF routing), the intended deployment.
            "speedup": round(generic_s / sched_s, 2),
            "kernel_speedup": round(generic_s / kernel_s, 2),
            "applies": sched.applies,
            "coalesced_away": sched.coalesced_away,
            # |AFF|-proportionality audit: mean/max nodes touched per op
            # by the kernel path, next to the generic scope and n.
            "touched_mean": round(sum(kernel_touched) / max(len(kernel_touched), 1), 1),
            "touched_max": max(kernel_touched, default=0),
            "generic_aff_mean": round(sum(generic_touched) / max(len(generic_touched), 1), 1),
        }
        results.append(entry)
        print(f"{entry['name']:24s} m={edges:<7d} generic {entry['generic_ms']:8.1f}ms  "
              f"kernel {entry['kernel_ms']:8.1f}ms  sched {entry['sched_ms']:8.1f}ms  "
              f"{entry['speedup']:.2f}x (sched)  touched μ={entry['touched_mean']}"
              f"/max={entry['touched_max']} of n={entry['nodes']}")


# ----------------------------------------------------------------------
# Smoke gate (CI)
# ----------------------------------------------------------------------
SMOKE_CASES = (
    (SSSPSpec, IncSSSP, True, 0),
    (SSWPSpec, IncSSWP, True, 0),
    (ReachSpec, IncReach, True, 0),
    (CCSpec, IncCC, False, None),
)


def smoke() -> int:
    for spec_cls, inc_cls, directed, query in SMOKE_CASES:
        spec = spec_cls()
        graph = assign_weights(erdos_renyi(60, 240, directed=directed, seed=5), seed=5)
        reason = unsupported_reason(spec, graph, query)
        if reason is not None:
            print(f"FAIL: {spec.name} kernel not selectable: {reason}", file=sys.stderr)
            return 1
        kernel = run_batch(spec, graph, query, engine="kernel")
        generic = run_batch(spec, graph, query, engine="generic")
        if kernel.values != generic.values:
            print(f"FAIL: {spec.name} batch kernel diverges", file=sys.stderr)
            return 1

        stream = list(random_updates(graph, 12, seed=9))
        outcomes = {}
        for engine in ("generic", "kernel"):
            work = graph.copy()
            state = run_batch(spec, work, query, engine="generic")
            algo = inc_cls(engine=engine)
            changes = [
                dict(algo.apply(work, state, Batch([op]), query).changes)
                for op in stream
            ]
            outcomes[engine] = (dict(state.values), changes)
        if outcomes["kernel"] != outcomes["generic"]:
            print(f"FAIL: {spec.name} incremental kernel diverges", file=sys.stderr)
            return 1

        # Sparse-drain gate: on a small random unit stream the forced
        # sparse tier must actually run its numpy frontier rounds — never
        # silently degrade to a dense full-graph sweep — and still land
        # on the generic fixpoint.
        work = graph.copy()
        state = run_batch(spec, work, query, engine="generic")
        algo = inc_cls(engine="kernel")
        algo.drain = "sparse"
        drains = set()
        for op in stream:
            result = algo.apply(work, state, Batch([op]), query)
            if result.kernel_stats is None:
                print(f"FAIL: {spec.name} sparse apply fell back off the kernel",
                      file=sys.stderr)
                return 1
            drains.add(result.kernel_stats["drain"])
        if "dense" in drains:
            print(f"FAIL: {spec.name} sparse drain silently fell back to dense",
                  file=sys.stderr)
            return 1
        if "sparse" not in drains:
            print(f"FAIL: {spec.name} sparse drain never exercised "
                  f"(saw {sorted(drains)})", file=sys.stderr)
            return 1
        if dict(state.values) != outcomes["generic"][0]:
            print(f"FAIL: {spec.name} sparse drain diverges", file=sys.stderr)
            return 1

        # Scheduler gate: coalescing + AFF routing reaches the same
        # fixpoint as the op-by-op applies above.
        work = graph.copy()
        state = run_batch(spec, work, query, engine="generic")
        inc_cls().apply_stream(work, state, [Batch([op]) for op in stream], query)
        if dict(state.values) != outcomes["generic"][0]:
            print(f"FAIL: {spec.name} scheduler stream diverges", file=sys.stderr)
            return 1
        print(f"smoke OK: {spec.name} (batch + incremental + sparse drain "
              "+ scheduler == generic)")
    return 0


def run_full(edges_sweep=(10_000, 100_000), ops: int = 300, repeats: int = 5):
    """The timed suite at the given sweep; returns registry rows."""
    results = []
    for edges in edges_sweep:
        bench_batch(results, edges, repeats)
        bench_incremental(results, edges, ops=ops)
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fast CI equality gate")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument(
        "--edges", type=int, nargs="*", default=[10_000, 100_000], help="edge-count sweep"
    )
    parser.add_argument("--ops", type=int, default=300, help="unit updates per stream")
    parser.add_argument("--tag", default=None, help="registry run tag")
    args = parser.parse_args()
    if args.smoke:
        return smoke()

    results = run_full(tuple(args.edges), ops=args.ops, repeats=args.repeats)
    record = record_results("kernels", results, tag=args.tag)
    print(f"recorded kernels run {record.run}" + (f" [{record.tag}]" if record.tag else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
