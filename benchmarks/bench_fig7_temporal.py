"""Figure 7 (g)–(i): real-life temporal updates (the WD proxy).

Five "months" of Wiki-DE-style updates (81% insertions / 19% deletions,
≈1.9% of |G| per month) are replayed; each benchmark measures the total
maintenance cost over all months.  The scope-share of h (Exp-2(2d):
47% / 92% / 83% for SSSP / CC / Sim on WD) is recorded as extra_info.
"""

import statistics

import pytest

from _shared import ALL_SETUPS
from repro.bench.runners import undirected_view
from repro.datasets import load as load_dataset

CLASSES = ["SSSP", "CC", "Sim"]
MONTHS = 5


def _slices(query_class):
    temporal = load_dataset("WD", 0.35)
    slices = temporal.monthly_batches(MONTHS)
    setup = ALL_SETUPS[query_class]
    if setup.undirected_only:
        slices = [(undirected_view(g), d) for g, d in slices]
    return slices


@pytest.mark.parametrize("query_class", CLASSES)
def test_incremental_over_months(benchmark, query_class):
    benchmark.group = f"fig7-temporal-{query_class}"
    setup = ALL_SETUPS[query_class]
    slices = _slices(query_class)
    first_graph = slices[0][0]
    query = setup.make_query(first_graph)
    base_state = setup.batch_factory().run(first_graph.copy(), query)

    shares = []

    def prepare():
        return (setup.inc_factory(), first_graph.copy(), base_state.copy()), {}

    def run(algo, graph, state):
        for _snapshot, delta in slices:
            result = algo.apply(graph, state, delta, query, measure=True)
            shares.append(result.scope_share)

    benchmark.pedantic(run, setup=prepare, rounds=3, iterations=1)
    benchmark.extra_info["h_scope_share_pct"] = 100.0 * statistics.mean(shares)


@pytest.mark.parametrize("query_class", CLASSES)
def test_competitor_over_months(benchmark, query_class):
    benchmark.group = f"fig7-temporal-{query_class}"
    setup = ALL_SETUPS[query_class]
    slices = _slices(query_class)
    first_graph = slices[0][0]
    query = setup.make_query(first_graph)

    def prepare():
        algo = setup.competitor_factory()
        algo.build(first_graph.copy(), query)
        return (algo,), {}

    def run(algo):
        for _snapshot, delta in slices:
            algo.apply(delta)

    benchmark.pedantic(run, setup=prepare, rounds=3, iterations=1)


@pytest.mark.parametrize("query_class", CLASSES)
def test_batch_recompute_over_months(benchmark, query_class):
    benchmark.group = f"fig7-temporal-{query_class}"
    setup = ALL_SETUPS[query_class]
    slices = _slices(query_class)
    query = setup.make_query(slices[0][0])
    # Pre-build the post-update graph of every month.
    from repro.graph import updated_copy

    month_graphs = [updated_copy(g, d) for g, d in slices]

    def run():
        for graph in month_graphs:
            setup.batch_factory().run(graph, query)

    benchmark.pedantic(run, rounds=3, iterations=1)
