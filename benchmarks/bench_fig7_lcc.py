"""Figure 7 (f): LCC under batch updates on the LJ proxy.

Paper shape: IncLCC beats LCC_fp up to 32% of updates (4.5× on average)
and IncLCC_n by ~2×; DynLCC is the streaming competitor.
"""

import pytest

from _shared import bench_batch_rerun, bench_competitor, bench_incremental, prepared
from repro.baselines import UnitLoop
from repro.bench.runners import ALL_SETUPS

PERCENTAGES = [0.02, 0.08, 0.32]


@pytest.mark.parametrize("pct", PERCENTAGES)
def test_batch_lccfp(benchmark, pct):
    benchmark.group = f"fig7-LCC-LJ-{int(pct * 100)}pct"
    bench_batch_rerun(benchmark, "LCC", prepared("LJ", "LCC", pct))


@pytest.mark.parametrize("pct", PERCENTAGES)
def test_inclcc(benchmark, pct):
    benchmark.group = f"fig7-LCC-LJ-{int(pct * 100)}pct"
    bench_incremental(benchmark, "LCC", prepared("LJ", "LCC", pct))


@pytest.mark.parametrize("pct", [0.02, 0.08])
def test_inclcc_n(benchmark, pct):
    benchmark.group = f"fig7-LCC-LJ-{int(pct * 100)}pct"
    bench_incremental(
        benchmark,
        "LCC",
        prepared("LJ", "LCC", pct),
        inc_factory=lambda: UnitLoop(ALL_SETUPS["LCC"].inc_factory()),
    )


@pytest.mark.parametrize("pct", PERCENTAGES)
def test_dynlcc(benchmark, pct):
    benchmark.group = f"fig7-LCC-LJ-{int(pct * 100)}pct"
    bench_competitor(benchmark, "LCC", prepared("LJ", "LCC", pct))
