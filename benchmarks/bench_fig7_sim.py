"""Figure 7 (d)–(e): Sim under batch updates (DP and FS proxies).

Paper shape: IncSim and IncMatch both beat Sim_fp for |ΔG| ≤ 64%, scale
better than IncSim_n, and sit within ~30% of each other.
"""

import pytest

from _shared import bench_batch_rerun, bench_competitor, bench_incremental, prepared
from repro.baselines import UnitLoop
from repro.bench.runners import ALL_SETUPS

PERCENTAGES = [0.02, 0.16, 0.64]
DATASETS = ["DP", "FS"]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("pct", PERCENTAGES)
def test_batch_simfp(benchmark, dataset, pct):
    benchmark.group = f"fig7-Sim-{dataset}-{int(pct * 100)}pct"
    bench_batch_rerun(benchmark, "Sim", prepared(dataset, "Sim", pct))


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("pct", PERCENTAGES)
def test_incsim(benchmark, dataset, pct):
    benchmark.group = f"fig7-Sim-{dataset}-{int(pct * 100)}pct"
    bench_incremental(benchmark, "Sim", prepared(dataset, "Sim", pct))


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("pct", [0.02, 0.16])
def test_incsim_n(benchmark, dataset, pct):
    benchmark.group = f"fig7-Sim-{dataset}-{int(pct * 100)}pct"
    bench_incremental(
        benchmark,
        "Sim",
        prepared(dataset, "Sim", pct),
        inc_factory=lambda: UnitLoop(ALL_SETUPS["Sim"].inc_factory()),
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("pct", PERCENTAGES)
def test_incmatch(benchmark, dataset, pct):
    benchmark.group = f"fig7-Sim-{dataset}-{int(pct * 100)}pct"
    bench_competitor(benchmark, "Sim", prepared(dataset, "Sim", pct))
