"""Exp-1(c): the affected area of unit updates is a tiny share of |Ψ|.

The paper reports |AFF| between 1.7·10⁻⁶% and 2.6·10⁻³% of the auxiliary
structures on OKT for unit updates.  This benchmark times the AFF
computation itself and records the measured shares plus the C1 check
(H⁰ ⊆ AFF) in the benchmark's extra_info.
"""

import statistics

import pytest

from _shared import ALL_SETUPS, dataset_graph
from repro.algorithms.cc import CCSpec
from repro.algorithms.lcc import LCCSpec
from repro.algorithms.sim import SimSpec
from repro.algorithms.sssp import SSSPSpec
from repro.core import verify_relative_boundedness
from repro.generators import random_updates

SPECS = {"SSSP": SSSPSpec, "CC": CCSpec, "Sim": SimSpec, "LCC": LCCSpec}


@pytest.mark.parametrize("query_class", list(SPECS))
def test_aff_share_for_unit_updates(benchmark, query_class):
    benchmark.group = "fig6-aff"
    spec = SPECS[query_class]()
    setup = ALL_SETUPS[query_class]
    graph = dataset_graph("OKT", query_class, 0.2)
    query = setup.make_query(graph)
    deltas = [random_updates(graph, 1, seed=10 + i) for i in range(4)]

    shares, bounded = [], []

    def run():
        shares.clear()
        bounded.clear()
        for delta in deltas:
            report = verify_relative_boundedness(spec, graph, delta, query)
            shares.append(report.aff_share)
            bounded.append(report.scope_bounded)

    benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["mean_aff_share_pct"] = 100.0 * statistics.mean(shares)
    benchmark.extra_info["h_scope_bounded"] = all(bounded)
    assert all(bounded), "C1 violated: H⁰ ⊄ AFF"
