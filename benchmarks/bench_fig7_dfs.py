"""Exp-2(1e): DFS under batch updates on the OKT proxy.

Paper shape: IncDFS beats DFS_fp only for small |ΔG| (≤ ~4%; 0.53s vs
1.64s at 1%), loses beyond that — small updates invalidate large parts
of a traversal — and beats DynDFS (which processes units one by one) by
~4× at 1%.
"""

import pytest

from _shared import bench_batch_rerun, bench_competitor, bench_incremental, prepared

PERCENTAGES = [0.005, 0.02, 0.08]


@pytest.mark.parametrize("pct", PERCENTAGES)
def test_batch_dfsfp(benchmark, pct):
    benchmark.group = f"fig7-DFS-OKT-{pct * 100:g}pct"
    bench_batch_rerun(benchmark, "DFS", prepared("OKT", "DFS", pct))


@pytest.mark.parametrize("pct", PERCENTAGES)
def test_incdfs(benchmark, pct):
    benchmark.group = f"fig7-DFS-OKT-{pct * 100:g}pct"
    bench_incremental(benchmark, "DFS", prepared("OKT", "DFS", pct))


@pytest.mark.parametrize("pct", [0.005, 0.02])
def test_dyndfs(benchmark, pct):
    benchmark.group = f"fig7-DFS-OKT-{pct * 100:g}pct"
    bench_competitor(benchmark, "DFS", prepared("OKT", "DFS", pct))
