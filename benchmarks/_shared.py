"""Shared fixtures and helpers for the pytest-benchmark suite.

Every benchmark file regenerates one table or figure of the paper's
Section 6 (see DESIGN.md §4 for the index).  Scales are chosen so the
whole suite finishes in a few minutes of pure Python; the companion
harness ``python -m repro.bench`` prints the full paper-style tables.

Prepared scenarios (graph + batch fixpoint + ΔG) are cached per module
so repeated benchmark rounds only pay for copies.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.bench.runners import ALL_SETUPS, undirected_view
from repro.datasets import load as load_dataset
from repro.generators import random_updates
from repro.graph import Graph, TemporalGraph

SCALE = 0.5

#: Version of the shared ``BENCH_*.json`` envelope written by
#: :func:`record_results`.  Bump when the envelope (not a suite's
#: per-entry fields) changes shape.
RECORD_SCHEMA = 3


def host_record() -> Dict[str, Any]:
    """Provenance for a benchmark run: interpreter, host, and git sha.

    Recorded once per file so throughput numbers from different PRs can
    be compared with their environment in view.  The git sha is best
    effort — absent when the tree is not a checkout (e.g. an sdist).
    """
    record: Dict[str, Any] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        # cpu_count() is the host's core count; the scheduler may pin
        # this process to fewer (CI containers often do).  Shard-sweep
        # rows are only comparable with the *effective* parallelism in
        # view — a 1-core run makes 8 shards pure overhead.
        "available_cpus": (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count()
        ),
    }
    try:
        record["git_sha"] = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        record["git_sha"] = None
    return record


def record_results(
    out: Path,
    suite: str,
    results: List[Dict[str, Any]],
    *,
    legacy_run: int = 1,
) -> int:
    """Append ``results`` to the append-only ledger at ``out``.

    Every ``BENCH_*.json`` file shares this envelope: ``schema`` /
    ``suite`` / ``host`` (see :func:`host_record`) / ``results``, where
    each result row carries a ``run`` number so the trajectory across
    PRs stays visible.  Earlier rows are kept verbatim; rows written
    before run-tagging existed are tagged ``legacy_run`` (each suite
    knows which PR its untagged baseline came from).  Returns the run
    number assigned to the new rows.
    """
    existing: List[Dict[str, Any]] = []
    if out.exists():
        existing = json.loads(out.read_text()).get("results", [])
        for entry in existing:
            entry.setdefault("run", legacy_run)
    run = max((entry["run"] for entry in existing), default=legacy_run - 1) + 1
    for entry in results:
        entry["run"] = run
    payload = {
        "schema": RECORD_SCHEMA,
        "suite": suite,
        "host": host_record(),
        "results": existing + results,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return run


@lru_cache(maxsize=None)
def dataset_graph(name: str, query_class: str, scale: float = SCALE) -> Graph:
    data = load_dataset(name, scale)
    if isinstance(data, TemporalGraph):
        first, last = data.time_span
        data = data.snapshot((first + last) / 2)
    if ALL_SETUPS[query_class].undirected_only:
        data = undirected_view(data)
    return data


@lru_cache(maxsize=None)
def prepared(name: str, query_class: str, delta_pct: float, seed: int = 1, scale: float = SCALE):
    """(graph, query, base_state, delta) for one scenario, cached."""
    setup = ALL_SETUPS[query_class]
    graph = dataset_graph(name, query_class, scale)
    query = setup.make_query(graph)
    state = setup.batch_factory().run(graph.copy(), query)
    delta = random_updates(graph, max(1, int(delta_pct * graph.size)), seed=seed)
    return graph, query, state, delta


def bench_incremental(benchmark, query_class: str, scenario, inc_factory=None, rounds: int = 3):
    """Benchmark one incremental application with fresh copies per round."""
    setup = ALL_SETUPS[query_class]
    graph, query, state, delta = scenario
    factory = inc_factory or setup.inc_factory

    def prepare():
        return (factory(), graph.copy(), state.copy(), delta, query), {}

    def run(algo, g, s, d, q):
        return algo.apply(g, s, d, q)

    benchmark.pedantic(run, setup=prepare, rounds=rounds, iterations=1)


def bench_batch_rerun(benchmark, query_class: str, scenario, rounds: int = 3):
    """Benchmark recomputing from scratch on G ⊕ ΔG."""
    from repro.graph import updated_copy

    setup = ALL_SETUPS[query_class]
    graph, query, _state, delta = scenario
    new_graph = updated_copy(graph, delta)

    def run():
        return setup.batch_factory().run(new_graph, query)

    benchmark.pedantic(run, rounds=rounds, iterations=1)


def bench_competitor(benchmark, query_class: str, scenario, unit: bool = False, rounds: int = 3):
    """Benchmark a stateful dynamic baseline applying ΔG."""
    setup = ALL_SETUPS[query_class]
    graph, query, _state, delta = scenario

    def prepare():
        algo = setup.competitor_for_unit_updates() if unit else setup.competitor_factory()
        algo.build(graph.copy(), query)
        return (algo, delta), {}

    def run(algo, d):
        algo.apply(d)

    benchmark.pedantic(run, setup=prepare, rounds=rounds, iterations=1)
