"""Shared fixtures and helpers for the pytest-benchmark suite.

Every benchmark file regenerates one table or figure of the paper's
Section 6 (see DESIGN.md §4 for the index).  Scales are chosen so the
whole suite finishes in a few minutes of pure Python; the companion
harness ``python -m repro.bench`` prints the full paper-style tables.

Prepared scenarios (graph + batch fixpoint + ΔG) are cached per module
so repeated benchmark rounds only pay for copies.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.runners import ALL_SETUPS, undirected_view
from repro.datasets import load as load_dataset
from repro.evalhub import Registry, RunRecord
from repro.evalhub import host_record as host_record  # noqa: F401  (re-export)
from repro.generators import random_updates
from repro.graph import Graph, TemporalGraph

SCALE = 0.5


def record_results(
    suite: str,
    results: List[Dict[str, Any]],
    *,
    tag: Optional[str] = None,
    scale: str = "full",
    root=None,
) -> RunRecord:
    """Append ``results`` as one tagged run to the suite's registry ledger.

    The per-file envelope/host-record plumbing that used to live here
    (and was copied between ``bench_kernels.py`` and ``bench_serve.py``)
    now lives in :class:`repro.evalhub.Registry`; this wrapper only
    keeps the benchmark scripts free of registry wiring.
    """
    return Registry(root=root).append(suite, results, tag=tag, scale=scale)


@lru_cache(maxsize=None)
def dataset_graph(name: str, query_class: str, scale: float = SCALE) -> Graph:
    data = load_dataset(name, scale)
    if isinstance(data, TemporalGraph):
        first, last = data.time_span
        data = data.snapshot((first + last) / 2)
    if ALL_SETUPS[query_class].undirected_only:
        data = undirected_view(data)
    return data


@lru_cache(maxsize=None)
def prepared(name: str, query_class: str, delta_pct: float, seed: int = 1, scale: float = SCALE):
    """(graph, query, base_state, delta) for one scenario, cached."""
    setup = ALL_SETUPS[query_class]
    graph = dataset_graph(name, query_class, scale)
    query = setup.make_query(graph)
    state = setup.batch_factory().run(graph.copy(), query)
    delta = random_updates(graph, max(1, int(delta_pct * graph.size)), seed=seed)
    return graph, query, state, delta


def bench_incremental(benchmark, query_class: str, scenario, inc_factory=None, rounds: int = 3):
    """Benchmark one incremental application with fresh copies per round."""
    setup = ALL_SETUPS[query_class]
    graph, query, state, delta = scenario
    factory = inc_factory or setup.inc_factory

    def prepare():
        return (factory(), graph.copy(), state.copy(), delta, query), {}

    def run(algo, g, s, d, q):
        return algo.apply(g, s, d, q)

    benchmark.pedantic(run, setup=prepare, rounds=rounds, iterations=1)


def bench_batch_rerun(benchmark, query_class: str, scenario, rounds: int = 3):
    """Benchmark recomputing from scratch on G ⊕ ΔG."""
    from repro.graph import updated_copy

    setup = ALL_SETUPS[query_class]
    graph, query, _state, delta = scenario
    new_graph = updated_copy(graph, delta)

    def run():
        return setup.batch_factory().run(new_graph, query)

    benchmark.pedantic(run, rounds=rounds, iterations=1)


def bench_competitor(benchmark, query_class: str, scenario, unit: bool = False, rounds: int = 3):
    """Benchmark a stateful dynamic baseline applying ΔG."""
    setup = ALL_SETUPS[query_class]
    graph, query, _state, delta = scenario

    def prepare():
        algo = setup.competitor_for_unit_updates() if unit else setup.competitor_factory()
        algo.build(graph.copy(), query)
        return (algo, delta), {}

    def run(algo, d):
        algo.apply(d)

    benchmark.pedantic(run, setup=prepare, rounds=rounds, iterations=1)
