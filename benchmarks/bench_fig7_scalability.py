"""Figure 7 (j)–(l): scalability with |G| at fixed |ΔG| = 1%·|G|.

The paper sweeps synthetic graphs from 0.5B to 2.2B; we sweep a decade
at laptop scale.  Shape target: the batch cost grows linearly with |G|
while the incremental cost grows with |ΔG| (i.e. much more slowly),
so the gap widens with scale.
"""

import pytest

from _shared import ALL_SETUPS
from repro.generators import random_updates
from repro.generators.random_graphs import assign_labels, assign_weights, barabasi_albert

CLASSES = ["SSSP", "CC", "Sim"]
NODE_COUNTS = [500, 2000]


def _scenario(query_class, n):
    graph = barabasi_albert(n, 5, seed=61)
    assign_labels(graph, seed=62)
    assign_weights(graph, seed=63)
    setup = ALL_SETUPS[query_class]
    query = setup.make_query(graph)
    state = setup.batch_factory().run(graph.copy(), query)
    delta = random_updates(graph, max(1, graph.size // 100), seed=64)
    return setup, graph, query, state, delta


@pytest.mark.parametrize("n", NODE_COUNTS)
@pytest.mark.parametrize("query_class", CLASSES)
def test_batch_scaling(benchmark, query_class, n):
    benchmark.group = f"fig7-scalability-{query_class}-n{n}"
    setup, graph, query, _state, delta = _scenario(query_class, n)
    from repro.graph import updated_copy

    new_graph = updated_copy(graph, delta)

    def run():
        setup.batch_factory().run(new_graph, query)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("n", NODE_COUNTS)
@pytest.mark.parametrize("query_class", CLASSES)
def test_incremental_scaling(benchmark, query_class, n):
    benchmark.group = f"fig7-scalability-{query_class}-n{n}"
    setup, graph, query, state, delta = _scenario(query_class, n)

    def prepare():
        return (setup.inc_factory(), graph.copy(), state.copy()), {}

    def run(algo, g, s):
        algo.apply(g, s, delta, query)

    benchmark.pedantic(run, setup=prepare, rounds=3, iterations=1)


@pytest.mark.parametrize("n", NODE_COUNTS)
@pytest.mark.parametrize("query_class", CLASSES)
def test_competitor_scaling(benchmark, query_class, n):
    benchmark.group = f"fig7-scalability-{query_class}-n{n}"
    setup, graph, query, _state, delta = _scenario(query_class, n)

    def prepare():
        algo = setup.competitor_factory()
        algo.build(graph.copy(), query)
        return (algo,), {}

    def run(algo):
        algo.apply(delta)

    benchmark.pedantic(run, setup=prepare, rounds=3, iterations=1)
