"""Figure 8: memory usage after processing |ΔG| = 1% on the OKT proxy.

pytest-benchmark measures time, so each case times the size estimation
and records the byte counts in extra_info; the assertions encode the
paper's qualitative findings:

* deducible algorithms (IncSSSP, IncDFS, IncLCC) need no more state than
  their batch counterparts beyond the timestamp table;
* weakly deducible ones (IncCC, IncSim) stay within a small factor;
* most competitors trade space for time.
"""

import pytest

from _shared import ALL_SETUPS, dataset_graph
from repro.generators import random_updates
from repro.graph import updated_copy
from repro.metrics import deep_size_bytes

CLASSES = ["SSSP", "CC", "Sim", "DFS", "LCC"]


@pytest.mark.parametrize("query_class", CLASSES)
def test_memory_footprints(benchmark, query_class):
    benchmark.group = "fig8-memory"
    setup = ALL_SETUPS[query_class]
    graph = dataset_graph("OKT", query_class, 0.25)
    query = setup.make_query(graph)
    delta = random_updates(graph, max(1, graph.size // 100), seed=71)

    batch_state = setup.batch_factory().run(updated_copy(graph, delta), query)

    inc_graph, inc_state = graph.copy(), setup.batch_factory().run(graph.copy(), query)
    setup.inc_factory().apply(inc_graph, inc_state, delta, query)

    competitor = setup.competitor_factory()
    competitor.build(graph.copy(), query)
    competitor.apply(delta)

    sizes = {}

    def run():
        sizes["batch"] = deep_size_bytes(batch_state.values)
        sizes["inc"] = deep_size_bytes(inc_state.values) + deep_size_bytes(
            inc_state.timestamps
        )
        sizes["competitor"] = max(
            0, deep_size_bytes(competitor) - deep_size_bytes(competitor.graph)
        )

    benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update({k: v for k, v in sizes.items()})

    # Qualitative claims of Exp-4: the incremental state stays within a
    # small factor of the batch state (timestamps are the only addition).
    assert sizes["inc"] <= 3 * sizes["batch"]
